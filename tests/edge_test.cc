// Boundary-condition tests: degenerate shapes and parameter values that the
// main suites don't hit (scalars, single elements, empty ranges, D' == D).

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/pca_adapter.h"
#include "core/static_adapters.h"
#include "data/uea_like.h"
#include "finetune/finetune.h"
#include "models/moment.h"
#include "optim/optim.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

TEST(EdgeTensorTest, ScalarBroadcastsEverywhere) {
  Tensor scalar = Tensor::Scalar(2.0f);
  Tensor m(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor sum = Add(m, scalar);
  EXPECT_EQ(sum.shape(), (Shape{2, 3}));
  EXPECT_EQ(sum.at({1, 2}), 8.0f);
  Tensor prod = Mul(scalar, m);
  EXPECT_EQ(prod.at({0, 0}), 2.0f);
}

TEST(EdgeTensorTest, OneByOneMatMul) {
  Tensor a(Shape{1, 1}, {3.0f});
  Tensor b(Shape{1, 1}, {4.0f});
  EXPECT_EQ(MatMul(a, b).at({0, 0}), 12.0f);
}

TEST(EdgeTensorTest, SoftmaxOfSingleLogitIsOne) {
  Tensor t(Shape{3, 1}, {5.0f, -2.0f, 0.0f});
  Tensor s = Softmax(t);
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(s.at({i, 0}), 1.0f, 1e-6f);
}

TEST(EdgeTensorTest, VarianceOfSingleElementAxisIsZero) {
  Tensor t(Shape{4, 1}, {1, 2, 3, 4});
  Tensor v = Variance(t, 1);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0.0f);
}

TEST(EdgeTensorTest, EmptySliceHasZeroElements) {
  Tensor t(Shape{2, 5});
  Tensor s = Slice(t, 1, 3, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 0}));
  EXPECT_EQ(s.numel(), 0);
}

TEST(EdgeTensorTest, ConcatOfSingleTensorIsCopy) {
  Rng rng(1);
  Tensor t = Tensor::RandN({3, 4}, &rng);
  Tensor c = Concat({t}, 0);
  EXPECT_TRUE(AllClose(c, t));
  EXPECT_FALSE(c.SharesStorageWith(t));
}

TEST(EdgeTensorTest, TakeRowsEmptySelection) {
  Tensor t(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor picked = TakeRows(t, {});
  EXPECT_EQ(picked.shape(), (Shape{0, 2}));
}

TEST(EdgeAutogradTest, CrossEntropySingleClassIsZero) {
  ag::Var logits(Tensor::Zeros({3, 1}), true);
  ag::Var loss = ag::CrossEntropy(logits, {0, 0, 0});
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-6f);
  loss.Backward();
  EXPECT_NEAR(Norm(logits.grad()), 0.0f, 1e-6f);
}

TEST(EdgeAutogradTest, BackwardOnLeafScalar) {
  ag::Var x(Tensor::Scalar(5.0f), true);
  x.Backward();  // d(x)/d(x) = 1
  EXPECT_EQ(x.grad()[0], 1.0f);
}

TEST(EdgeAutogradTest, ZeroElementTensorThroughOps) {
  Tensor empty(Shape{0, 4});
  Tensor scaled = Scale(empty, 2.0f);
  EXPECT_EQ(scaled.numel(), 0);
  Tensor summed = Sum(empty, 0);
  EXPECT_EQ(summed.shape(), (Shape{4}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(summed[i], 0.0f);
}

TEST(EdgeOptimTest, CosineScheduleDegenerateWarmup) {
  // Warmup longer than the run: stays in warmup the whole time.
  EXPECT_LE(optim::CosineSchedule(5, 10, 20), 1.0f);
  EXPECT_GT(optim::CosineSchedule(5, 10, 20), 0.0f);
  // No warmup at all.
  EXPECT_NEAR(optim::CosineSchedule(0, 10, 0), 1.0f, 1e-5f);
}

TEST(EdgeRngTest, UniformIntOfOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(EdgeAdapterTest, PcaWithFullDimensionPreservesGeometry) {
  // D' == D: the projection is a full orthonormal basis change, so pairwise
  // distances (and norms of centered data) are preserved.
  Rng rng(3);
  Tensor x = Tensor::RandN({6, 5, 4}, &rng);
  core::AdapterOptions options;
  options.out_channels = 4;
  core::PcaAdapter pca(options);
  std::vector<int64_t> y(6, 0);
  ASSERT_TRUE(pca.Fit(x, y).ok());
  Tensor out = *pca.Transform(x);
  // Centered input norm == projected norm (rotation preserves length).
  Tensor centered = Sub(x.Reshape({30, 4}),
                        Mean(x.Reshape({30, 4}), 0, /*keepdim=*/true));
  EXPECT_NEAR(Norm(centered), Norm(out), 1e-2f * Norm(centered));
}

TEST(EdgeAdapterTest, VarWithFullDimensionIsPermutation) {
  Rng rng(4);
  Tensor x = Tensor::RandN({4, 3, 5}, &rng);
  core::AdapterOptions options;
  options.out_channels = 5;
  core::VarAdapter var(options);
  std::vector<int64_t> y(4, 0);
  ASSERT_TRUE(var.Fit(x, y).ok());
  Tensor out = *var.Transform(x);
  // Same multiset of values per (sample, step).
  EXPECT_NEAR(Norm(out), Norm(x), 1e-5f);
}

TEST(EdgeFinetuneTest, BatchLargerThanDatasetWorks) {
  Rng rng(5);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  data::UeaDatasetSpec spec{"edge", "e", 6, 4, 4, 16, 2, 2};
  auto pair = data::GenerateUeaLike(spec, 1, data::GeneratorCaps{});
  finetune::FineTuneOptions options;
  options.strategy = finetune::Strategy::kHeadOnly;
  options.batch_size = 512;  // >> dataset size
  options.head_epochs = 5;
  auto result =
      finetune::FineTune(&model, nullptr, pair.train, pair.test, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(EdgeFinetuneTest, SingleSampleBatches) {
  Rng rng(6);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  data::UeaDatasetSpec spec{"edge1", "e1", 8, 4, 4, 16, 2, 2};
  auto pair = data::GenerateUeaLike(spec, 2, data::GeneratorCaps{});
  finetune::FineTuneOptions options;
  options.strategy = finetune::Strategy::kHeadOnly;
  options.batch_size = 1;
  options.head_epochs = 3;
  auto result =
      finetune::FineTune(&model, nullptr, pair.train, pair.test, options);
  ASSERT_TRUE(result.ok());
}

TEST(EdgeModelTest, SingleChannelMultivariateInput) {
  // D == 1 degenerates to the univariate case and must still work.
  Rng rng(7);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({3, 24, 1}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);
  EXPECT_EQ(emb.shape(), (Shape{3, 16}));
}

TEST(EdgeModelTest, BatchOfOne) {
  Rng rng(8);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({1, 16, 3}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);
  EXPECT_EQ(emb.shape(), (Shape{1, 16}));
}

}  // namespace
}  // namespace tsfm
