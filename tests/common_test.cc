#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"

namespace tsfm {
namespace {

// --------------------------- Status / Result ------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dims");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dims");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TSFM_ASSIGN_OR_RETURN(int h, Half(x));
  TSFM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckBoth(int a, int b) {
  TSFM_RETURN_IF_ERROR(FailIfNegative(a));
  TSFM_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
}

// --------------------------------- Rng ------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  // Different seeds diverge (overwhelmingly likely).
  Rng a2(123);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a2.NextUint64() != c.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, UniformIntInRangeAndCoversAll) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int64_t> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int64_t> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.Fork();
  // Child stream differs from continuing the parent stream.
  Rng parent2(21);
  (void)parent2.NextUint64();  // same consumption as Fork
  EXPECT_NE(child.NextUint64(), parent2.NextUint64());
}

TEST(RngTest, FillNormalStdDev) {
  Rng rng(31);
  std::vector<float> buf(50000);
  rng.FillNormal(buf.data(), buf.size(), 2.0f);
  double sq = 0.0;
  for (float x : buf) sq += static_cast<double>(x) * x;
  EXPECT_NEAR(std::sqrt(sq / buf.size()), 2.0, 0.05);
}

}  // namespace
}  // namespace tsfm
