#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "experiments/runner.h"
#include "experiments/table.h"

namespace tsfm {
namespace {

using experiments::ExperimentConfig;
using experiments::ExperimentRunner;
using experiments::RunSpec;

ExperimentConfig TestConfig() {
  ExperimentConfig config;
  config.fast = true;
  config.num_seeds = 1;
  config.caps = data::GeneratorCaps{24, 16, 32, 12};
  config.checkpoint_dir = ::testing::TempDir();
  return config;
}

TEST(TableTest, AlignmentAndRows) {
  experiments::Table t({"dataset", "acc"});
  t.AddRow({"NATOPS", "0.93"});
  t.AddRow({"DuckDuckGeese", "COM"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("dataset"), std::string::npos);
  EXPECT_NE(s.find("DuckDuckGeese"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvEscaping) {
  experiments::Table t({"name", "value"});
  t.AddRow({"with,comma", "with\"quote"});
  const std::string path = ::testing::TempDir() + "/table.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[256] = {0};
  fread(buf, 1, sizeof(buf) - 1, f);
  fclose(f);
  const std::string contents(buf);
  EXPECT_NE(contents.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(contents.find("\"with\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TableTest, SummaryCell) {
  EXPECT_EQ(experiments::SummaryCell({"0.5", "0.7"}), "0.600+-0.141");
  EXPECT_EQ(experiments::SummaryCell({"0.5", "COM"}), "COM");
  EXPECT_EQ(experiments::SummaryCell({"TO"}), "TO");
}

TEST(MethodLabelTest, Labels) {
  core::AdapterOptions o;
  EXPECT_EQ(experiments::MethodLabel(std::nullopt, o), "no_adapter");
  EXPECT_EQ(experiments::MethodLabel(core::AdapterKind::kPca, o), "PCA");
  o.pca_scale = true;
  EXPECT_EQ(experiments::MethodLabel(core::AdapterKind::kPca, o), "ScaledPCA");
  o.pca_scale = false;
  o.pca_patch_window = 8;
  EXPECT_EQ(experiments::MethodLabel(core::AdapterKind::kPca, o),
            "PatchPCA_8");
  EXPECT_EQ(experiments::MethodLabel(core::AdapterKind::kVar, o), "VAR");
}

TEST(ConfigFromEnvTest, ReadsVariables) {
  setenv("TSFM_BENCH_FAST", "1", 1);
  setenv("TSFM_SEEDS", "5", 1);
  setenv("TSFM_DATASETS", "NATOPS,Vowels", 1);
  ExperimentConfig config = experiments::ConfigFromEnv();
  EXPECT_TRUE(config.fast);
  EXPECT_EQ(config.num_seeds, 5);
  ASSERT_EQ(config.dataset_filter.size(), 2u);
  EXPECT_EQ(config.dataset_filter[0], "NATOPS");
  unsetenv("TSFM_BENCH_FAST");
  unsetenv("TSFM_SEEDS");
  unsetenv("TSFM_DATASETS");
}

TEST(RunnerTest, DatasetFilterWorks) {
  ExperimentConfig config = TestConfig();
  config.dataset_filter = {"NATOPS", "Vowels"};
  ExperimentRunner runner(config);
  auto datasets = runner.Datasets();
  ASSERT_EQ(datasets.size(), 2u);
  // Paper (Table 3) order is preserved: JapaneseVowels precedes NATOPS.
  EXPECT_EQ(datasets[0].name, "JapaneseVowels");
  EXPECT_EQ(datasets[1].name, "NATOPS");
}

TEST(RunnerTest, NoFilterGivesAllTwelve) {
  ExperimentRunner runner(TestConfig());
  EXPECT_EQ(runner.Datasets().size(), 12u);
}

TEST(RunnerTest, EstimateMarksPaperScaleComTo) {
  ExperimentRunner runner(TestConfig());
  // DuckDuckGeese full FT without adapter must be COM at paper scale.
  RunSpec spec;
  spec.dataset = "DuckDuckGeese";
  spec.model_kind = models::ModelKind::kMoment;
  spec.strategy = finetune::Strategy::kFullFineTune;
  auto est = runner.Estimate(spec);
  EXPECT_EQ(est.verdict, resources::Verdict::kCudaOutOfMemory);
  // Behind a PCA adapter (D'=5) the same run fits in memory.
  spec.adapter = core::AdapterKind::kPca;
  auto est2 = runner.Estimate(spec);
  EXPECT_NE(est2.verdict, resources::Verdict::kCudaOutOfMemory);
}

TEST(RunnerTest, ComRunSkipsTraining) {
  ExperimentRunner runner(TestConfig());
  RunSpec spec;
  spec.dataset = "PEMS-SF";
  spec.model_kind = models::ModelKind::kVit;
  spec.strategy = finetune::Strategy::kFullFineTune;
  auto record = runner.Run(spec);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_FALSE(record->completed());
  EXPECT_EQ(record->CellString(), "COM");
}

TEST(RunnerTest, OkRunExecutesAndReportsAccuracy) {
  ExperimentRunner runner(TestConfig());
  RunSpec spec;
  spec.dataset = "JapaneseVowels";
  spec.model_kind = models::ModelKind::kVit;
  spec.adapter = core::AdapterKind::kPca;
  spec.strategy = finetune::Strategy::kAdapterPlusHead;
  spec.adapter_options.out_channels = 5;
  auto record = runner.Run(spec);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  ASSERT_TRUE(record->completed());
  EXPECT_GT(record->accuracy(), 0.0);
  EXPECT_LE(record->accuracy(), 1.0);
  EXPECT_EQ(record->method, "PCA");
  // CellString is a number.
  EXPECT_EQ(record->CellString().find("COM"), std::string::npos);
}

TEST(RunnerTest, ModelsAreCachedAcrossRuns) {
  ExperimentRunner runner(TestConfig());
  auto m1 = runner.GetModel(models::ModelKind::kVit);
  auto m2 = runner.GetModel(models::ModelKind::kVit);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m1->get(), m2->get());
}

}  // namespace
}  // namespace tsfm
