#include <gtest/gtest.h>

#include "core/adapter.h"
#include "core/lcomb_adapter.h"
#include "data/uea_like.h"
#include "finetune/finetune.h"
#include "models/moment.h"
#include "models/vit.h"
#include "obs/budget.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

using core::AdapterKind;
using core::AdapterOptions;
using finetune::FineTune;
using finetune::FineTuneOptions;
using finetune::Strategy;

// A small, learnable dataset: two classes with clearly different latent
// frequencies, 8 redundant channels, short series.
data::DatasetPair SmallProblem(uint64_t seed = 1) {
  data::UeaDatasetSpec spec{"toy", "toy", 48, 32, 8, 32, 2, 3};
  return data::GenerateUeaLike(spec, seed, data::GeneratorCaps{});
}

std::shared_ptr<models::MomentModel> TinyMoment(uint64_t seed = 11) {
  Rng rng(seed);
  auto model =
      std::make_shared<models::MomentModel>(models::MomentTestConfig(), &rng);
  models::PretrainOptions po;
  po.corpus_size = 48;
  po.series_length = 32;
  po.epochs = 2;
  EXPECT_TRUE(model->Pretrain(po).ok());
  return model;
}

FineTuneOptions QuickOptions(Strategy strategy) {
  FineTuneOptions o;
  o.strategy = strategy;
  o.head_epochs = 40;
  o.joint_epochs = 6;
  o.batch_size = 16;
  return o;
}

TEST(FineTuneTest, HeadOnlyNoAdapterBeatsChance) {
  auto model = TinyMoment();
  auto pair = SmallProblem();
  auto r = FineTune(model.get(), nullptr, pair.train, pair.test,
                    QuickOptions(Strategy::kHeadOnly));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->test_accuracy, 0.6);  // chance = 0.5
  EXPECT_GT(r->train_accuracy, 0.6);
  EXPECT_GT(r->total_seconds, 0.0);
}

TEST(FineTuneTest, PcaAdapterPlusHeadBeatsChance) {
  auto model = TinyMoment();
  auto pair = SmallProblem(2);
  AdapterOptions ao;
  ao.out_channels = 3;
  auto adapter = core::CreateAdapter(AdapterKind::kPca, ao);
  auto r = FineTune(model.get(), adapter.get(), pair.train, pair.test,
                    QuickOptions(Strategy::kAdapterPlusHead));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->test_accuracy, 0.6);
  EXPECT_TRUE(adapter->fitted());
  EXPECT_GE(r->adapter_fit_seconds, 0.0);
}

TEST(FineTuneTest, EveryStaticAdapterLearnsTheToyProblem) {
  auto model = TinyMoment();
  auto pair = SmallProblem(3);
  for (AdapterKind kind : {AdapterKind::kPca, AdapterKind::kSvd,
                           AdapterKind::kRandProj, AdapterKind::kVar}) {
    AdapterOptions ao;
    ao.out_channels = 3;
    auto adapter = core::CreateAdapter(kind, ao);
    auto r = FineTune(model.get(), adapter.get(), pair.train, pair.test,
                      QuickOptions(Strategy::kAdapterPlusHead));
    ASSERT_TRUE(r.ok()) << core::AdapterKindName(kind);
    EXPECT_GT(r->test_accuracy, 0.55) << core::AdapterKindName(kind);
  }
}

TEST(FineTuneTest, LcombTrainsJointlyAndImproves) {
  auto model = TinyMoment();
  auto pair = SmallProblem(4);
  AdapterOptions ao;
  ao.out_channels = 3;
  auto adapter = core::CreateAdapter(AdapterKind::kLcomb, ao);
  auto* lcomb = static_cast<core::LinearCombinerAdapter*>(adapter.get());
  // Capture initial weight by fitting first (FineTune will refit; same seed
  // path is deterministic, so weight_before reflects the starting point).
  auto r = FineTune(model.get(), adapter.get(), pair.train, pair.test,
                    QuickOptions(Strategy::kAdapterPlusHead));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->test_accuracy, 0.55);
  // The adapter weight has been trained away from its random init: gradient
  // steps leave a trace (non-zero optimizer history is hard to probe, so
  // check the weight changed across a second, untrained fit with same seed).
  AdapterOptions ao2 = ao;
  core::LinearCombinerAdapter fresh(ao2, false);
  // Note: FineTune re-seeds adapter options; compare against a fresh fit on
  // the same normalized data is approximated by norm difference.
  data::ChannelStats stats = data::ComputeChannelStats(pair.train);
  auto normalized = data::NormalizeWith(pair.train, stats);
  ASSERT_TRUE(fresh.Fit(normalized.x, normalized.y).ok());
  EXPECT_GT(Norm(lcomb->weight().value()), 0.0f);
}

TEST(FineTuneTest, LcombTopKRuns) {
  auto model = TinyMoment();
  auto pair = SmallProblem(5);
  AdapterOptions ao;
  ao.out_channels = 3;
  ao.top_k = 4;
  auto adapter = core::CreateAdapter(AdapterKind::kLcombTopK, ao);
  auto r = FineTune(model.get(), adapter.get(), pair.train, pair.test,
                    QuickOptions(Strategy::kAdapterPlusHead));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->test_accuracy, 0.45);
}

TEST(FineTuneTest, FullFineTuneRunsAndLearns) {
  auto model = TinyMoment();
  auto pair = SmallProblem(6);
  auto r = FineTune(model.get(), nullptr, pair.train, pair.test,
                    QuickOptions(Strategy::kFullFineTune));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->test_accuracy, 0.55);
}

TEST(FineTuneTest, FullFineTuneMutatesModel) {
  auto model = TinyMoment();
  auto pair = SmallProblem(7);
  Rng probe_rng(1);
  Tensor probe = Tensor::RandN({1, 32, 2}, &probe_rng);
  nn::ForwardContext ctx{false, nullptr};
  Tensor before = model->EncodeChannels(ag::Constant(probe), ctx).value();
  auto r = FineTune(model.get(), nullptr, pair.train, pair.test,
                    QuickOptions(Strategy::kFullFineTune));
  ASSERT_TRUE(r.ok());
  Tensor after = model->EncodeChannels(ag::Constant(probe), ctx).value();
  EXPECT_GT(MaxAbsDiff(before, after), 1e-6f);
}

TEST(FineTuneTest, HeadOnlyDoesNotMutateModel) {
  auto model = TinyMoment();
  auto pair = SmallProblem(8);
  Rng probe_rng(2);
  Tensor probe = Tensor::RandN({1, 32, 2}, &probe_rng);
  nn::ForwardContext ctx{false, nullptr};
  Tensor before = model->EncodeChannels(ag::Constant(probe), ctx).value();
  auto r = FineTune(model.get(), nullptr, pair.train, pair.test,
                    QuickOptions(Strategy::kHeadOnly));
  ASSERT_TRUE(r.ok());
  Tensor after = model->EncodeChannels(ag::Constant(probe), ctx).value();
  EXPECT_LT(MaxAbsDiff(before, after), 1e-7f);
}

TEST(FineTuneTest, DeterministicPerSeed) {
  auto pair = SmallProblem(9);
  auto run = [&](uint64_t seed) {
    auto model = TinyMoment(123);  // identical init + pretraining
    FineTuneOptions o = QuickOptions(Strategy::kHeadOnly);
    o.seed = seed;
    auto r = FineTune(model.get(), nullptr, pair.train, pair.test, o);
    EXPECT_TRUE(r.ok());
    return r->test_accuracy;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(FineTuneTest, RejectsInconsistentSplits) {
  auto model = TinyMoment();
  auto pair = SmallProblem(10);
  data::TimeSeriesDataset bad_test = pair.test;
  bad_test.x = Tensor(Shape{bad_test.size(), 32, 9});  // wrong channels
  auto r = FineTune(model.get(), nullptr, pair.train, bad_test,
                    QuickOptions(Strategy::kHeadOnly));
  EXPECT_FALSE(r.ok());
}

TEST(FineTuneTest, PropagatesAdapterFailure) {
  auto model = TinyMoment();
  auto pair = SmallProblem(11);
  AdapterOptions ao;
  ao.out_channels = 100;  // > D -> Fit fails
  auto adapter = core::CreateAdapter(AdapterKind::kPca, ao);
  auto r = FineTune(model.get(), adapter.get(), pair.train, pair.test,
                    QuickOptions(Strategy::kAdapterPlusHead));
  EXPECT_FALSE(r.ok());
}

TEST(EmbedDatasetTest, ShapeAndBatchingConsistency) {
  auto model = TinyMoment();
  Rng rng(3);
  Tensor x = Tensor::RandN({10, 32, 3}, &rng);
  Tensor full = finetune::EmbedDataset(*model, x, 10, 0);
  Tensor chunked = finetune::EmbedDataset(*model, x, 3, 0);
  EXPECT_EQ(full.shape(), (Shape{10, 16}));
  EXPECT_LT(MaxAbsDiff(full, chunked), 1e-5f);
}

TEST(FineTuneTest, EpochCallbackDeliversFullTimeline) {
  auto model = TinyMoment();
  auto pair = SmallProblem(12);
  FineTuneOptions o = QuickOptions(Strategy::kHeadOnly);
  o.head_epochs = 5;
  std::vector<finetune::EpochProgress> timeline;
  o.on_epoch = [&](const finetune::EpochProgress& p) {
    timeline.push_back(p);
  };
  auto r = FineTune(model.get(), nullptr, pair.train, pair.test, o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(timeline.size(), 5u);
  for (size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline[i].epoch, static_cast<int64_t>(i));
    EXPECT_EQ(timeline[i].total_epochs, 5);
    EXPECT_EQ(timeline[i].phase, finetune::Phase::kHead);
    EXPECT_STREQ(finetune::PhaseName(timeline[i].phase), "head");
    EXPECT_GE(timeline[i].accuracy, 0.0);
    EXPECT_LE(timeline[i].accuracy, 1.0);
    EXPECT_GT(timeline[i].seconds, 0.0);
    EXPECT_GT(timeline[i].pool_live_bytes, 0);
  }
  // Training converges, so the last epoch should not be less accurate than
  // the first by a wide margin — and loss must drop.
  EXPECT_LT(timeline.back().loss, timeline.front().loss);
}

TEST(FineTuneTest, TinyMemoryBudgetStopsRunWithDiagnosis) {
  auto model = TinyMoment();
  auto pair = SmallProblem(13);

  // Record spans so the diagnosis can name the hottest ones.
  obs::EnableTracing();
  obs::ClearTrace();

  obs::BudgetLimits limits;
  limits.mem_bytes = 1024;  // far below any real fine-tune footprint
  obs::SetBudget(limits);
  auto r = FineTune(model.get(), nullptr, pair.train, pair.test,
                    QuickOptions(Strategy::kHeadOnly));
  obs::ClearBudget();
  obs::DisableTracing();
  obs::ClearTrace();

  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("memory budget exceeded"),
            std::string::npos);
  // The diagnosis names the loop that tripped and the top profiler nodes.
  EXPECT_NE(r.status().message().find("finetune."), std::string::npos);
  EXPECT_NE(r.status().message().find("hottest spans"), std::string::npos);
}

TEST(FineTuneTest, TinyTimeBudgetStopsJointLoop) {
  auto model = TinyMoment();
  auto pair = SmallProblem(14);
  AdapterOptions ao;
  ao.out_channels = 3;
  auto adapter = core::CreateAdapter(AdapterKind::kLcomb, ao);

  obs::BudgetLimits limits;
  limits.time_seconds = 1e-9;
  obs::SetBudget(limits);
  auto r = FineTune(model.get(), adapter.get(), pair.train, pair.test,
                    QuickOptions(Strategy::kAdapterPlusHead));
  obs::ClearBudget();

  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("time budget exceeded"),
            std::string::npos);
}

}  // namespace
}  // namespace tsfm
