#include <cmath>

#include <gtest/gtest.h>

#include "stats/stats.h"

namespace tsfm {
namespace {

TEST(MeanStdTest, KnownValues) {
  EXPECT_DOUBLE_EQ(stats::Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(stats::Mean({}), 0.0);
  EXPECT_NEAR(stats::SampleStd({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stats::SampleStd({5}), 0.0);
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(stats::RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(stats::RegularizedIncompleteBeta(2.0, 5.0, x),
                1.0 - stats::RegularizedIncompleteBeta(5.0, 2.0, 1.0 - x),
                1e-10);
  }
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(stats::RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(StudentTTest, KnownQuantiles) {
  // For df=10, t=2.228 is the 97.5% quantile: two-tailed p = 0.05.
  EXPECT_NEAR(stats::StudentTTwoTailedP(2.228, 10), 0.05, 1e-3);
  // t=0 -> p=1.
  EXPECT_NEAR(stats::StudentTTwoTailedP(0.0, 5), 1.0, 1e-10);
  // Symmetric in t.
  EXPECT_NEAR(stats::StudentTTwoTailedP(-2.228, 10),
              stats::StudentTTwoTailedP(2.228, 10), 1e-12);
  // Large |t| -> p ~ 0.
  EXPECT_LT(stats::StudentTTwoTailedP(50.0, 10), 1e-8);
}

TEST(StudentTTest, LargeDfApproachesNormal) {
  // df -> inf: t=1.96 should give p ~ 0.05.
  EXPECT_NEAR(stats::StudentTTwoTailedP(1.96, 100000), 0.05, 1e-3);
}

TEST(WelchTest, IdenticalSamplesGivePOne) {
  auto r = stats::WelchTTest({0.5, 0.5, 0.5}, {0.5, 0.5, 0.5});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->p_value, 1.0);
}

TEST(WelchTest, ClearlyDifferentSamplesGiveSmallP) {
  auto r = stats::WelchTTest({0.90, 0.91, 0.92}, {0.50, 0.51, 0.49});
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->p_value, 1e-3);
  EXPECT_GT(r->t_statistic, 10.0);
}

TEST(WelchTest, OverlappingSamplesGiveLargeP) {
  auto r = stats::WelchTTest({0.70, 0.75, 0.72}, {0.71, 0.74, 0.73});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->p_value, 0.5);
}

TEST(WelchTest, MatchesNumericalReference) {
  // Hand-computed Welch test for {1,2,3,4} vs {2,4,6,8}:
  // t = -sqrt(3), df = 4.41176, p = 0.15158 (numeric tail integration of the
  // t density).
  auto r = stats::WelchTTest({1, 2, 3, 4}, {2, 4, 6, 8});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->t_statistic, -1.7320508, 1e-5);
  EXPECT_NEAR(r->degrees_of_freedom, 4.4117647, 1e-4);
  EXPECT_NEAR(r->p_value, 0.1515804, 1e-5);
}

TEST(WelchTest, RejectsTooFewObservations) {
  EXPECT_FALSE(stats::WelchTTest({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(stats::WelchTTest({1.0, 2.0}, {}).ok());
}

TEST(WelchTest, ZeroVarianceDifferentMeans) {
  auto r = stats::WelchTTest({0.5, 0.5}, {0.7, 0.7});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->p_value, 0.0);
}

TEST(PairwiseMatrixTest, SymmetricWithUnitDiagonal) {
  std::vector<std::vector<double>> methods{
      {0.8, 0.81, 0.79}, {0.80, 0.82, 0.78}, {0.5, 0.52, 0.48}};
  auto m = stats::PairwisePValueMatrix(methods);
  ASSERT_EQ(m.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m[i][i], 1.0);
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
  }
  EXPECT_GT(m[0][1], 0.5);  // similar methods
  EXPECT_LT(m[0][2], 0.01);  // dissimilar methods
}

TEST(PairwiseMatrixTest, DegenerateSampleGivesNaN) {
  std::vector<std::vector<double>> methods{{0.8, 0.81}, {0.5}};
  auto m = stats::PairwisePValueMatrix(methods);
  EXPECT_TRUE(std::isnan(m[0][1]));
  EXPECT_DOUBLE_EQ(m[1][1], 1.0);
}

TEST(RankTest, DescendingWithHighestGettingRankOne) {
  auto ranks = stats::RankDescending({0.3, 0.9, 0.5});
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(RankTest, TiesAveraged) {
  auto ranks = stats::RankDescending({0.5, 0.9, 0.5, 0.1});
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[0], 2.5);  // tie for ranks 2 and 3
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(RankTest, AllTied) {
  auto ranks = stats::RankDescending({0.5, 0.5, 0.5});
  for (double r : ranks) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(AverageRanksTest, AggregatesAcrossDatasets) {
  // Method 0 always best, method 2 always worst.
  std::vector<std::vector<double>> per_dataset{
      {0.9, 0.8, 0.2}, {0.95, 0.7, 0.3}, {0.85, 0.6, 0.1}};
  auto avg = stats::AverageRanks(per_dataset);
  EXPECT_DOUBLE_EQ(avg[0], 1.0);
  EXPECT_DOUBLE_EQ(avg[1], 2.0);
  EXPECT_DOUBLE_EQ(avg[2], 3.0);
  EXPECT_TRUE(stats::AverageRanks({}).empty());
}

TEST(FormatTest, MeanStdString) {
  const std::string s = stats::FormatMeanStd({0.5, 0.6, 0.7});
  EXPECT_EQ(s, "0.600+-0.100");
}

}  // namespace
}  // namespace tsfm
