// Serving stack: frame protocol hardening, micro-batch bit-identity,
// admission control, hot-swap under load, and graceful drain.
//
// The fuzz matrix mirrors io_test's corruption matrix: truncation at every
// header byte, bit-flipped header/CRC bytes, and hostile length fields must
// surface as protocol errors (or a closed connection) — never a crash, a
// hang, or an unbounded allocation. Built with -DTSFM_SANITIZE=thread in CI
// alongside session_test.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/uea_like.h"
#include "finetune/classifier.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/registry.h"
#include "pipeline/session.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

using finetune::ClassifierConfig;
using finetune::TsfmClassifier;

data::DatasetPair Problem(uint64_t seed) {
  data::UeaDatasetSpec spec{"serve_toy", "sv", 40, 24, 8, 32, 2, 3};
  return data::GenerateUeaLike(spec, seed, data::GeneratorCaps{});
}

Result<TsfmClassifier> FittedClassifier(const data::DatasetPair& pair) {
  ClassifierConfig config;
  config.model_kind = models::ModelKind::kVit;
  config.model_config = models::VitTestConfig();
  config.pretrain.corpus_size = 48;
  config.pretrain.series_length = 32;
  config.pretrain.epochs = 1;
  config.finetune.head_epochs = 8;
  config.adapter_options.out_channels = 3;
  TSFM_ASSIGN_OR_RETURN(TsfmClassifier clf, TsfmClassifier::Create(config));
  TSFM_RETURN_IF_ERROR(clf.Fit(pair.train, &pair.test));
  return clf;
}

// One fitted session shared by every test (fitting dominates runtime). The
// classifier is leaked intentionally so the session stays valid for the
// whole process.
struct Fitted {
  data::DatasetPair pair;
  TsfmClassifier* clf = nullptr;
  std::shared_ptr<const pipeline::InferenceSession> session;
  std::vector<int64_t> reference;  // serial PredictBatch over pair.test.x
};

Fitted& F() {
  static Fitted* f = [] {
    auto* out = new Fitted();
    out->pair = Problem(31);
    auto clf = FittedClassifier(out->pair);
    if (!clf.ok()) {
      std::fprintf(stderr, "fixture: %s\n", clf.status().ToString().c_str());
      std::abort();
    }
    out->clf = new TsfmClassifier(std::move(*clf));
    out->session = out->clf->session();
    auto ref = out->session->PredictBatch(out->pair.test.x);
    if (!ref.ok()) std::abort();
    out->reference = *ref;
    return out;
  }();
  return *f;
}

struct RunningServer {
  pipeline::Registry registry;  // test-local, never the process singleton
  std::unique_ptr<serve::Server> server;
};

std::unique_ptr<RunningServer> StartServer(serve::ServerOptions options,
                                           const std::string& name =
                                               "default") {
  auto running = std::make_unique<RunningServer>();
  EXPECT_TRUE(running->registry.Install(name, F().session).ok());
  options.port = 0;
  options.session_name = name;
  auto server = serve::Server::Start(&running->registry, std::move(options));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  if (!server.ok()) return nullptr;
  running->server = std::move(*server);
  return running;
}

double Metric(const char* name) {
  const auto snapshot = obs::Registry::Instance().TakeSnapshot();
  const auto it = snapshot.find(name);
  return it == snapshot.end() ? 0.0 : it->second;
}

// ---------------------------------------------------------------------------
// Protocol units.

TEST(ServeProtocolTest, PayloadCodecsRoundTrip) {
  const Tensor x = F().pair.test.x.Narrow(0, 0, 2);
  auto tensor = serve::DecodeTensorPayload(serve::EncodeTensorPayload(x), 3);
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  ASSERT_EQ(tensor->shape(), x.shape());
  const Tensor xc = x.Contiguous();
  EXPECT_EQ(std::memcmp(tensor->data(), xc.data(),
                        sizeof(float) * static_cast<size_t>(xc.numel())),
            0);

  const std::vector<int64_t> labels{3, 1, 4, 1, 5};
  auto rt = serve::DecodeLabelsPayload(serve::EncodeLabelsPayload(labels));
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(*rt, labels);

  auto s = serve::DecodeStringPayload(serve::EncodeStringPayload("bundle_a"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "bundle_a");

  const Status err = Status::InvalidArgument("bad shape");
  const Status decoded =
      serve::DecodeErrorPayload(serve::EncodeErrorPayload(err));
  EXPECT_EQ(decoded.code(), err.code());
  EXPECT_EQ(decoded.message(), err.message());
}

TEST(ServeProtocolTest, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serve::Frame out{serve::MessageType::kClassifyRequest, 42,
                   serve::EncodeTensorPayload(F().pair.test.x.Narrow(0, 0, 1))};
  ASSERT_TRUE(serve::WriteFrame(fds[0], out).ok());
  serve::Frame in;
  ASSERT_TRUE(serve::ReadFrame(fds[1], &in, nullptr).ok());
  EXPECT_EQ(in.type, out.type);
  EXPECT_EQ(in.request_id, 42u);
  EXPECT_EQ(in.payload, out.payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocolTest, HeaderValidationRejectsGarbage) {
  const serve::Frame frame{serve::MessageType::kPing, 7, ""};
  const std::string good = serve::EncodeFrame(frame);
  ASSERT_GE(good.size(), serve::kFrameHeaderBytes);
  serve::FrameHeader header;
  ASSERT_TRUE(serve::ParseFrameHeader(
                  reinterpret_cast<const uint8_t*>(good.data()), &header)
                  .ok());

  auto rejects = [&](size_t offset, uint8_t value) {
    std::string bad = good;
    bad[offset] = static_cast<char>(value);
    serve::FrameHeader h;
    return !serve::ParseFrameHeader(
                reinterpret_cast<const uint8_t*>(bad.data()), &h)
                .ok();
  };
  EXPECT_TRUE(rejects(0, 0xFF));  // magic
  EXPECT_TRUE(rejects(4, 0xEE));  // version
  EXPECT_TRUE(rejects(6, 0xEE));  // unknown type
  // Hostile payload_size: the high byte makes it astronomically larger than
  // kMaxFramePayload; the header alone must reject it (no allocation).
  EXPECT_TRUE(rejects(23, 0xFF));
}

TEST(ServeProtocolTest, HostileTensorLengthsRejectedWithoutAllocation) {
  // ndim claims 2^61 dims in a 16-byte payload.
  std::string evil(16, '\0');
  uint64_t ndim = 1ull << 61;
  std::memcpy(evil.data(), &ndim, sizeof(ndim));
  EXPECT_FALSE(serve::DecodeTensorPayload(evil, 3).ok());

  // Plausible ndim but dims whose product dwarfs the actual payload bytes.
  std::string dims(8 + 3 * 8 + 4, '\0');
  uint64_t three = 3, huge = 1ull << 40, one = 1;
  std::memcpy(dims.data(), &three, 8);
  std::memcpy(dims.data() + 8, &huge, 8);
  std::memcpy(dims.data() + 16, &huge, 8);
  std::memcpy(dims.data() + 24, &one, 8);
  EXPECT_FALSE(serve::DecodeTensorPayload(dims, 3).ok());

  // Labels payload claiming 2^50 entries.
  std::string labels(8, '\0');
  uint64_t n = 1ull << 50;
  std::memcpy(labels.data(), &n, sizeof(n));
  EXPECT_FALSE(serve::DecodeLabelsPayload(labels).ok());
}

TEST(ServeProtocolTest, ContextFrameRoundTripsAndZeroTraceStaysV1) {
  // trace_id == 0 must encode byte-identical to the pre-context v1 wire.
  serve::Frame plain{serve::MessageType::kPing, 1, "abc"};
  const std::string v1 = serve::EncodeFrame(plain);
  uint16_t version;
  std::memcpy(&version, v1.data() + 4, 2);
  EXPECT_EQ(version, serve::kProtocolVersion);

  // A nonzero trace id upgrades the frame to v2 and survives the
  // round-trip.
  serve::Frame traced{serve::MessageType::kClassifyRequest, 2,
                      serve::EncodeTensorPayload(
                          F().pair.test.x.Narrow(0, 0, 1))};
  traced.trace_id = 0xDEADBEEFu;
  const std::string v2 = serve::EncodeFrame(traced);
  std::memcpy(&version, v2.data() + 4, 2);
  EXPECT_EQ(version, serve::kProtocolVersionContext);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(serve::WriteFrame(fds[0], traced).ok());
  serve::Frame in;
  ASSERT_TRUE(serve::ReadFrame(fds[1], &in, nullptr).ok());
  EXPECT_EQ(in.trace_id, 0xDEADBEEFu);
  EXPECT_EQ(in.request_id, 2u);
  EXPECT_EQ(in.payload, traced.payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocolTest, HostileContextLengthsRejectedWithoutAllocation) {
  const serve::Frame plain{serve::MessageType::kPing, 3, ""};
  std::string wire = serve::EncodeFrame(plain);
  // Upgrade the header to v2 and append a hostile ctx_len: 0xFFFF would be
  // a 64 KiB read if the reader trusted it; the cap (kMaxContextBytes) must
  // reject it from the 2 length bytes alone, before any context read or
  // allocation.
  const uint16_t v2 = serve::kProtocolVersionContext;
  std::memcpy(wire.data() + 4, &v2, 2);
  std::string hostile = wire.substr(0, serve::kFrameHeaderBytes);
  const uint16_t huge_len = 0xFFFF;
  hostile.append(reinterpret_cast<const char*>(&huge_len), 2);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::send(fds[0], hostile.data(), hostile.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(hostile.size()));
  ::shutdown(fds[0], SHUT_WR);
  serve::Frame in;
  const Status s = serve::ReadFrame(fds[1], &in, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);

  // A v2 frame truncated mid-context must surface as a truncated frame, not
  // a hang or a crash.
  std::string truncated = wire.substr(0, serve::kFrameHeaderBytes);
  const uint16_t claimed = serve::kContextBytes;
  truncated.append(reinterpret_cast<const char*>(&claimed), 2);
  truncated.append(4, '\x07');  // 4 of the claimed 16 context bytes
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::send(fds[0], truncated.data(), truncated.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(truncated.size()));
  ::shutdown(fds[0], SHUT_WR);
  EXPECT_FALSE(serve::ReadFrame(fds[1], &in, nullptr).ok());
  ::close(fds[0]);
  ::close(fds[1]);

  // A corrupted context byte must fail the chained CRC (which covers
  // ctx || payload).
  serve::Frame traced{serve::MessageType::kPing, 4, "xyz"};
  traced.trace_id = 77;
  std::string flipped = serve::EncodeFrame(traced);
  flipped[serve::kFrameHeaderBytes + 3] ^= 0x40;  // inside the ctx block
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::send(fds[0], flipped.data(), flipped.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(flipped.size()));
  ::shutdown(fds[0], SHUT_WR);
  const Status crc = serve::ReadFrame(fds[1], &in, nullptr);
  ASSERT_FALSE(crc.ok());
  EXPECT_NE(crc.ToString().find("CRC"), std::string::npos);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Server behavior.

TEST(ServeServerTest, BatchingIsBitIdenticalToSerial) {
  serve::ServerOptions options;
  options.batch.window_us = 20000;
  options.batch.max_batch = 16;
  auto running = StartServer(options);
  ASSERT_NE(running, nullptr);
  const int port = running->server->port();
  const Fitted& f = F();
  const auto before_batches = Metric("serve.batches");
  const auto before_requests = Metric("serve.merged_requests");

  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0}, failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = serve::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        const int64_t idx = (t * kRounds + round) %
                            static_cast<int64_t>(f.reference.size());
        auto labels = client->Classify(f.pair.test.x.Narrow(0, idx, 1));
        if (!labels.ok()) {
          ++failures;
          continue;
        }
        if ((*labels)[0] != f.reference[idx]) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Concurrency across connections must actually have coalesced: fewer
  // forward passes than requests.
  const double batches = Metric("serve.batches") - before_batches;
  const double merged = Metric("serve.merged_requests") - before_requests;
  EXPECT_EQ(merged, kThreads * kRounds);
  EXPECT_LT(batches, merged);

  running->server->Stop();
}

TEST(ServeServerTest, EmbedMatchesSessionBitIdentical) {
  auto running = StartServer(serve::ServerOptions{});
  ASSERT_NE(running, nullptr);
  auto client = serve::Client::Connect("127.0.0.1", running->server->port());
  ASSERT_TRUE(client.ok());

  const Tensor batch = F().pair.test.x.Narrow(0, 0, 4);
  auto served = client->Embed(batch);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  auto direct = F().session->Embed(batch);
  ASSERT_TRUE(direct.ok());
  const Tensor expect = direct->Contiguous();
  ASSERT_EQ(served->shape(), expect.shape());
  EXPECT_EQ(std::memcmp(served->data(), expect.data(),
                        sizeof(float) * static_cast<size_t>(expect.numel())),
            0);
  running->server->Stop();
}

TEST(ServeServerTest, PingStatsAndReloadWithoutHandler) {
  auto running = StartServer(serve::ServerOptions{});
  ASSERT_NE(running, nullptr);
  auto client = serve::Client::Connect("127.0.0.1", running->server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("serve."), std::string::npos);
  // No reload_fn configured: reload must fail cleanly, not crash.
  auto reload = client->Reload("anywhere");
  EXPECT_FALSE(reload.ok());
  running->server->Stop();
}

TEST(ServeServerTest, AdmissionControlShedsWithBusy) {
  serve::ServerOptions options;
  options.batch.window_us = 200000;  // park the first request in the window
  options.batch.max_batch = 64;
  options.max_pending = 1;
  auto running = StartServer(options);
  ASSERT_NE(running, nullptr);
  const int port = running->server->port();
  const Tensor one = F().pair.test.x.Narrow(0, 0, 1);

  std::thread first([&] {
    auto client = serve::Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
    auto labels = client->Classify(one);  // held open by the batch window
    EXPECT_TRUE(labels.ok()) << labels.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto client = serve::Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  auto shed = client->Classify(one);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  first.join();
  EXPECT_GE(Metric("serve.shed"), 1.0);
  running->server->Stop();
}

TEST(ServeServerTest, HotSwapUnderLoadNeverDropsARequest) {
  // A second fitted bundle to swap in (different seed, same shapes).
  static Fitted* other = [] {
    auto* out = new Fitted();
    out->pair = Problem(32);
    auto clf = FittedClassifier(out->pair);
    if (!clf.ok()) std::abort();
    out->clf = new TsfmClassifier(std::move(*clf));
    out->session = out->clf->session();
    return out;
  }();
  const Fitted& f = F();
  auto ref_other = other->session->PredictBatch(f.pair.test.x);
  ASSERT_TRUE(ref_other.ok());

  auto running = std::make_unique<RunningServer>();
  ASSERT_TRUE(running->registry.Install("hot", f.session).ok());
  serve::ServerOptions options;
  options.port = 0;
  options.session_name = "hot";
  pipeline::Registry* reg = &running->registry;
  auto session_a = f.session;
  auto session_b = other->session;
  options.reload_fn = [reg, session_a, session_b](const std::string& prefix) {
    return reg->Install("hot", prefix == "a" ? session_a : session_b);
  };
  auto server = serve::Server::Start(reg, std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();

  constexpr int kThreads = 4;
  constexpr int kRounds = 20;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = serve::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++bad;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        const int64_t idx =
            (t + round) % static_cast<int64_t>(f.reference.size());
        auto labels = client->Classify(f.pair.test.x.Narrow(0, idx, 1));
        // Every response must be answered and must equal one of the two
        // installed pipelines' serial predictions for that sample (a batch
        // runs entirely on whichever session it resolved).
        if (!labels.ok() || ((*labels)[0] != f.reference[idx] &&
                             (*labels)[0] != (*ref_other)[idx])) {
          ++bad;
        }
      }
    });
  }
  // Swap back and forth while the load runs.
  auto admin = serve::Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(admin.ok());
  for (int swap = 0; swap < 6; ++swap) {
    auto name = admin->Reload(swap % 2 == 0 ? "b" : "a");
    EXPECT_TRUE(name.ok()) << name.status().ToString();
    if (name.ok()) EXPECT_EQ(*name, "hot");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  (*server)->Stop();
}

TEST(ServeServerTest, StopAnswersInFlightRequests) {
  serve::ServerOptions options;
  options.batch.window_us = 300000;  // long window: Stop() must not wait it out
  auto running = StartServer(options);
  ASSERT_NE(running, nullptr);
  const int port = running->server->port();
  const Fitted& f = F();

  std::atomic<bool> answered{false};
  std::thread inflight([&] {
    auto client = serve::Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
    auto labels = client->Classify(f.pair.test.x.Narrow(0, 2, 1));
    ASSERT_TRUE(labels.ok()) << labels.status().ToString();
    EXPECT_EQ((*labels)[0], f.reference[2]);
    answered.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  running->server->Stop();  // drains: the parked request is executed now
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  inflight.join();
  EXPECT_TRUE(answered.load());
  // Drain must not have waited out the 300ms window on top of execution.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            290);
}

TEST(ServeServerTest, ShutdownVerbAcknowledgesThenDrains) {
  auto running = StartServer(serve::ServerOptions{});
  ASSERT_NE(running, nullptr);
  auto client = serve::Client::Connect("127.0.0.1", running->server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(running->server->ShutdownRequested());
  EXPECT_TRUE(client->Shutdown().ok());
  EXPECT_TRUE(running->server->ShutdownRequested());
  running->server->Stop();
}

TEST(ServeBatcherTest, SubmitAfterStopFailsFast) {
  auto session = F().session;
  serve::MicroBatcher batcher([session] { return session; },
                              serve::BatchOptions{});
  batcher.Stop();
  auto future = batcher.SubmitClassify(F().pair.test.x.Narrow(0, 0, 1));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ServeBatcherTest, MissingSessionSurfacesAsError) {
  auto running = std::make_unique<RunningServer>();
  serve::ServerOptions options;
  options.port = 0;
  options.session_name = "never_installed";
  auto server = serve::Server::Start(&running->registry, std::move(options));
  ASSERT_TRUE(server.ok());
  auto client = serve::Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto labels = client->Classify(F().pair.test.x.Narrow(0, 0, 1));
  EXPECT_FALSE(labels.ok());  // clean error frame, not a crash
  (*server)->Stop();
}

// ---------------------------------------------------------------------------
// Request-scoped observability: trace stitching, the exposition endpoint,
// SLO tracking, and the access log.

TEST(ServeBatcherTest, StitchedTraceTreeAcrossSharedMicroBatch) {
  obs::EnableTracing();
  obs::ClearTrace();
  auto session = F().session;
  serve::BatchOptions options;
  options.window_us = 100000;  // long window: all four submits coalesce
  options.max_batch = 64;
  serve::MicroBatcher batcher([session] { return session; }, options);

  // Four concurrent requests, each with its own trace id, ride one batch.
  constexpr int kRequests = 4;
  serve::BatchStats stats[kRequests];
  std::vector<std::future<Result<std::vector<int64_t>>>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(batcher.SubmitClassify(
        F().pair.test.x.Narrow(0, i, 1),
        serve::RequestMeta{static_cast<uint64_t>(i + 1), 1000u + i},
        &stats[i]));
  }
  for (auto& f : futures) {
    auto labels = f.get();
    ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  }
  batcher.Stop();
  obs::DisableTracing();

  // The promise/future edge published every request's BatchStats: one
  // shared nonzero batch id, 4 requests, 4 samples.
  const uint64_t batch_id = stats[0].batch_id;
  EXPECT_NE(batch_id, 0u);
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(stats[i].batch_id, batch_id) << i;
    EXPECT_EQ(stats[i].batch_requests, kRequests) << i;
    EXPECT_EQ(stats[i].batch_samples, kRequests) << i;
    EXPECT_GE(stats[i].queue_us, 0) << i;
    EXPECT_GT(stats[i].execute_us, 0) << i;
  }

  // Reconstruct the stitched tree from the trace ring: every request owns a
  // queue-wait span carrying (its trace id, the shared batch id) — the join
  // key — and the batch-scoped spans (execute, session.predict) carry the
  // batch id so they attach to all four request trees.
  int queue_spans = 0;
  bool execute_span = false, session_span = false;
  for (const obs::TraceEvent& e : obs::TraceSnapshot()) {
    const std::string name = e.name;
    if (name == "serve.queue_wait" && e.batch_id == batch_id &&
        e.trace_id >= 1000u && e.trace_id < 1000u + kRequests) {
      ++queue_spans;
    } else if (name == "serve.batch.execute" && e.batch_id == batch_id) {
      execute_span = true;
      EXPECT_EQ(e.trace_id, 0u);  // batch-scoped, owned by no one request
    } else if (name == "session.predict" && e.batch_id == batch_id) {
      session_span = true;
    }
  }
  EXPECT_EQ(queue_spans, kRequests);
  EXPECT_TRUE(execute_span);
  EXPECT_TRUE(session_span);
  obs::ClearTrace();
}

TEST(ServeServerTest, EndToEndTraceStitchesClientThroughServer) {
  serve::ServerOptions options;
  auto running = StartServer(options);
  ASSERT_NE(running, nullptr);
  auto client = serve::Client::Connect("127.0.0.1", running->server->port());
  ASSERT_TRUE(client.ok());

  obs::EnableTracing();
  obs::ClearTrace();
  auto labels = client->Classify(F().pair.test.x.Narrow(0, 0, 1));
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();

  // The id the client minted and sent over the wire names the whole tree.
  const uint64_t trace_id = client->last_trace_id();
  ASSERT_NE(trace_id, 0u);
  bool client_span = false, server_span = false, queue_span = false;
  uint64_t batch_id = 0;
  // The handler's serve.request span closes after the response is written,
  // so the client can get its answer before the span is recorded — poll
  // briefly instead of snapshotting once.
  for (int attempt = 0; attempt < 100; ++attempt) {
    client_span = server_span = queue_span = false;
    batch_id = 0;
    for (const obs::TraceEvent& e : obs::TraceSnapshot()) {
      const std::string name = e.name;
      if (e.trace_id != trace_id) continue;
      if (name == "serve.client.request") client_span = true;
      if (name == "serve.request") server_span = true;
      if (name == "serve.queue_wait") {
        queue_span = true;
        batch_id = e.batch_id;
      }
    }
    if (client_span && server_span && queue_span) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  obs::DisableTracing();
  EXPECT_TRUE(client_span);
  EXPECT_TRUE(server_span);
  EXPECT_TRUE(queue_span);
  EXPECT_NE(batch_id, 0u);  // the request joined a real batch
  obs::ClearTrace();
  running->server->Stop();
}

TEST(ServeServerTest, MetricsVerbServesPrometheusExposition) {
  auto running = StartServer(serve::ServerOptions{});
  ASSERT_NE(running, nullptr);
  auto client = serve::Client::Connect("127.0.0.1", running->server->port());
  ASSERT_TRUE(client.ok());
  auto labels = client->Classify(F().pair.test.x.Narrow(0, 0, 1));
  ASSERT_TRUE(labels.ok());

  auto text = client->MetricsText();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("# TYPE tsfm_serve_requests_total counter"),
            std::string::npos);
  // The rolling window keys are live right after the request.
  EXPECT_NE(text->find("tsfm_serve_request_seconds_window_p99"),
            std::string::npos);
  EXPECT_NE(text->find("tsfm_serve_requests_window_rate"),
            std::string::npos);
  // Per-op latency carries model and op labels.
  EXPECT_NE(text->find("tsfm_serve_request_latency_window_p99"
                       "{model=\"default\",op=\"classify\"}"),
            std::string::npos);
  // trace.dropped is registered even though tracing never ran here.
  EXPECT_NE(text->find("tsfm_trace_dropped"), std::string::npos);
  running->server->Stop();
}

TEST(ServeServerTest, SloBreachTripsOnImpossibleThreshold) {
  const double breaches_before = Metric("serve.slo.breaches");
  serve::ServerOptions options;
  options.slo.p99_ms = 1e-6;  // no real request can beat a nanosecond SLO
  auto running = StartServer(options);
  ASSERT_NE(running, nullptr);
  auto client = serve::Client::Connect("127.0.0.1", running->server->port());
  ASSERT_TRUE(client.ok());
  auto labels = client->Classify(F().pair.test.x.Narrow(0, 0, 1));
  ASSERT_TRUE(labels.ok());

  // The scrape verb forces an SLO evaluation, so the breach is visible in
  // the same exposition payload that reports it.
  auto text = client->MetricsText();
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("tsfm_serve_slo_ok 0"), std::string::npos);
  EXPECT_GE(Metric("serve.slo.breaches"), breaches_before + 1.0);
  running->server->Stop();
}

TEST(ServeServerTest, AccessLogWritesOneJsonLinePerRequest) {
  const std::string path = "serve_test_access.log";
  serve::ServerOptions options;
  options.access_log.path = path;
  auto running = StartServer(options);
  ASSERT_NE(running, nullptr);
  auto client = serve::Client::Connect("127.0.0.1", running->server->port());
  ASSERT_TRUE(client.ok());

  constexpr int kRequests = 3;
  for (int i = 0; i < kRequests; ++i) {
    auto labels = client->Classify(F().pair.test.x.Narrow(0, i, 1));
    ASSERT_TRUE(labels.ok());
  }
  const uint64_t last_trace = client->last_trace_id();
  running->server->Stop();

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  int ok_lines = 0;
  bool saw_last_trace = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    // Every record is one complete JSON object with the fields the loadgen
    // cross-check keys on.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"request_id\":"), std::string::npos);
    EXPECT_NE(line.find("\"batch_id\":"), std::string::npos);
    EXPECT_NE(line.find("\"queue_us\":"), std::string::npos);
    EXPECT_NE(line.find("\"op\":\"classify\""), std::string::npos);
    if (line.find("\"status\":\"ok\"") != std::string::npos) ++ok_lines;
    if (line.find("\"trace_id\":" + std::to_string(last_trace)) !=
        std::string::npos) {
      saw_last_trace = true;
    }
  }
  EXPECT_EQ(ok_lines, kRequests);
  EXPECT_TRUE(saw_last_trace);  // the log cross-links into the trace tree
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fuzz matrix (mirrors io_test's corruption matrix).

// Sends `bytes` raw, half-closes, and drains whatever the server answers.
// Returns true when the exchange terminated (response or EOF) — i.e. the
// server neither hung nor died mid-conversation.
bool RawExchange(int port, const std::string& bytes) {
  auto client = serve::Client::Connect("127.0.0.1", port);
  if (!client.ok()) return false;
  const int fd = client->fd();
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;  // server already closed on us: acceptable
    sent += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  // Drain until EOF/close; bounded by the frame reader's own validation.
  serve::Frame response;
  while (serve::ReadFrame(fd, &response, nullptr).ok()) {
  }
  return true;
}

TEST(ServeFuzzTest, TruncationBitFlipsAndHostileLengthsNeverKillServer) {
  auto running = StartServer(serve::ServerOptions{});
  ASSERT_NE(running, nullptr);
  const int port = running->server->port();

  const serve::Frame good{
      serve::MessageType::kClassifyRequest, 9,
      serve::EncodeTensorPayload(F().pair.test.x.Narrow(0, 0, 1))};
  const std::string wire = serve::EncodeFrame(good);
  ASSERT_GT(wire.size(), serve::kFrameHeaderBytes + serve::kFrameTrailerBytes);

  // Truncation at every header byte, a payload cut, and every trailer byte.
  std::vector<size_t> cuts;
  for (size_t c = 0; c <= serve::kFrameHeaderBytes; ++c) cuts.push_back(c);
  cuts.push_back(serve::kFrameHeaderBytes + 11);
  cuts.push_back(wire.size() / 2);
  for (size_t c = wire.size() - serve::kFrameTrailerBytes; c < wire.size();
       ++c) {
    cuts.push_back(c);
  }
  for (const size_t cut : cuts) {
    EXPECT_TRUE(RawExchange(port, wire.substr(0, cut))) << "cut=" << cut;
  }

  // Bit-flip every header byte and every trailer (CRC) byte, plus a payload
  // byte. Flips that land in request_id still form a valid frame — the
  // point is the server survives whatever each flip produces.
  std::vector<size_t> flips;
  for (size_t i = 0; i < serve::kFrameHeaderBytes; ++i) flips.push_back(i);
  flips.push_back(serve::kFrameHeaderBytes + 5);
  for (size_t i = wire.size() - serve::kFrameTrailerBytes; i < wire.size();
       ++i) {
    flips.push_back(i);
  }
  for (const size_t flip : flips) {
    std::string mutated = wire;
    mutated[flip] = static_cast<char>(mutated[flip] ^ 0x55);
    EXPECT_TRUE(RawExchange(port, mutated)) << "flip=" << flip;
  }

  // Hostile length field: a header alone demanding kMaxFramePayload + 1.
  std::string hostile = wire.substr(0, serve::kFrameHeaderBytes);
  const uint64_t huge = serve::kMaxFramePayload + 1;
  std::memcpy(hostile.data() + 16, &huge, sizeof(huge));
  EXPECT_TRUE(RawExchange(port, hostile));

  // Zero-length classify payload (valid frame, empty tensor) must error,
  // not crash.
  serve::Frame empty{serve::MessageType::kClassifyRequest, 10, ""};
  EXPECT_TRUE(RawExchange(port, serve::EncodeFrame(empty)));

  EXPECT_GE(Metric("serve.protocol_errors"), 1.0);

  // The server is still healthy after the whole matrix.
  auto client = serve::Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  auto labels = client->Classify(F().pair.test.x.Narrow(0, 1, 1));
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  EXPECT_EQ((*labels)[0], F().reference[1]);
  running->server->Stop();
}

}  // namespace
}  // namespace tsfm
