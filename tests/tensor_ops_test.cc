#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "simd/dispatch.h"
#include "simd/simd_math.h"
#include "tensor/op_math.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

TEST(BroadcastTest, Shapes) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {2, 3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 1, 4}, {3, 1}), (Shape{2, 3, 4}));
  EXPECT_EQ(BroadcastShapes({}, {2, 2}), (Shape{2, 2}));
}

TEST(BroadcastTest, Compatibility) {
  EXPECT_TRUE(ShapesBroadcastable({2, 3}, {1, 3}));
  EXPECT_FALSE(ShapesBroadcastable({2, 3}, {2, 4}));
  EXPECT_TRUE(ShapesBroadcastable({5}, {4, 1}));
}

TEST(ElementwiseTest, AddSameShape) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b(Shape{2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.at({1, 1}), 44.0f);
}

TEST(ElementwiseTest, AddBroadcastBias) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias(Shape{3}, {10, 20, 30});
  Tensor c = Add(a, bias);
  EXPECT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_EQ(c.at({1, 2}), 36.0f);
}

TEST(ElementwiseTest, MulBroadcastColumn) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col(Shape{2, 1}, {2, 3});
  Tensor c = Mul(a, col);
  EXPECT_EQ(c.at({0, 2}), 6.0f);
  EXPECT_EQ(c.at({1, 0}), 12.0f);
}

TEST(ElementwiseTest, SubDivMaximum) {
  Tensor a(Shape{3}, {4, 9, 16});
  Tensor b(Shape{3}, {2, 3, 4});
  EXPECT_EQ(Sub(a, b)[1], 6.0f);
  EXPECT_EQ(Div(a, b)[2], 4.0f);
  EXPECT_EQ(Maximum(a, b)[0], 4.0f);
}

TEST(ElementwiseTest, ReduceToShapeSumsBroadcastAxes) {
  Tensor g(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = ReduceToShape(g, Shape{3});
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_EQ(r[0], 5.0f);
  EXPECT_EQ(r[2], 9.0f);
  Tensor r2 = ReduceToShape(g, Shape{2, 1});
  EXPECT_EQ(r2.at({0, 0}), 6.0f);
  EXPECT_EQ(r2.at({1, 0}), 15.0f);
}

TEST(UnaryTest, Basics) {
  Tensor t(Shape{3}, {-1, 0, 2});
  EXPECT_EQ(Neg(t)[0], 1.0f);
  EXPECT_EQ(Relu(t)[0], 0.0f);
  EXPECT_EQ(Relu(t)[2], 2.0f);
  EXPECT_EQ(Abs(t)[0], 1.0f);
  EXPECT_EQ(Square(t)[2], 4.0f);
  EXPECT_NEAR(Exp(t)[1], 1.0f, 1e-6f);
  EXPECT_NEAR(Sigmoid(t)[1], 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(t)[1], 0.0f, 1e-6f);
  EXPECT_EQ(Scale(t, 3.0f)[2], 6.0f);
  EXPECT_EQ(AddScalar(t, 1.0f)[0], 0.0f);
  EXPECT_NEAR(Pow(Tensor(Shape{1}, {4.0f}), 0.5f)[0], 2.0f, 1e-6f);
}

TEST(UnaryTest, GeluKnownValues) {
  // GELU(0) = 0; GELU(x) ~ x for large x; GELU(-large) ~ 0.
  Tensor t(Shape{3}, {0.0f, 5.0f, -5.0f});
  Tensor g = Gelu(t);
  EXPECT_NEAR(g[0], 0.0f, 1e-6f);
  EXPECT_NEAR(g[1], 5.0f, 1e-3f);
  EXPECT_NEAR(g[2], 0.0f, 1e-3f);
}

TEST(MatMulTest, Matches2x2) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b(Shape{2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at({0, 0}), 19.0f);
  EXPECT_EQ(c.at({0, 1}), 22.0f);
  EXPECT_EQ(c.at({1, 0}), 43.0f);
  EXPECT_EQ(c.at({1, 1}), 50.0f);
}

TEST(MatMulTest, RectangularAgainstManual) {
  Rng rng(1);
  Tensor a = Tensor::RandN({3, 5}, &rng);
  Tensor b = Tensor::RandN({5, 4}, &rng);
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{3, 4}));
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      float expect = 0;
      for (int64_t k = 0; k < 5; ++k) expect += a.at({i, k}) * b.at({k, j});
      EXPECT_NEAR(c.at({i, j}), expect, 1e-4f);
    }
  }
}

TEST(MatMulTest, BatchedEqualBatches) {
  Rng rng(2);
  Tensor a = Tensor::RandN({4, 2, 3}, &rng);
  Tensor b = Tensor::RandN({4, 3, 2}, &rng);
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{4, 2, 2}));
  // Check batch 2 against the unbatched product.
  Tensor a2 = Slice(a, 0, 2, 3).Reshape({2, 3});
  Tensor b2 = Slice(b, 0, 2, 3).Reshape({3, 2});
  Tensor c2 = MatMul(a2, b2);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(c.at({2, i, j}), c2.at({i, j}), 1e-5f);
    }
  }
}

TEST(MatMulTest, BroadcastsBatchDims) {
  Rng rng(3);
  Tensor a = Tensor::RandN({4, 2, 3}, &rng);
  Tensor w = Tensor::RandN({3, 5}, &rng);  // no batch dims -> broadcast
  Tensor c = MatMul(a, w);
  ASSERT_EQ(c.shape(), (Shape{4, 2, 5}));
  Tensor a0 = Slice(a, 0, 1, 2).Reshape({2, 3});
  Tensor c0 = MatMul(a0, w);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(c.at({1, i, j}), c0.at({i, j}), 1e-5f);
    }
  }
}

TEST(LayoutTest, TransposeLast2) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = TransposeLast2(a);
  ASSERT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at({0, 1}), 4.0f);
  EXPECT_EQ(t.at({2, 0}), 3.0f);
}

TEST(LayoutTest, PermuteRoundTrip) {
  Rng rng(4);
  Tensor a = Tensor::RandN({2, 3, 4, 5}, &rng);
  Tensor p = Permute(a, {0, 2, 1, 3});
  ASSERT_EQ(p.shape(), (Shape{2, 4, 3, 5}));
  Tensor back = Permute(p, {0, 2, 1, 3});
  EXPECT_TRUE(AllClose(a, back));
  EXPECT_EQ(p.at({1, 3, 2, 4}), a.at({1, 2, 3, 4}));
}

TEST(LayoutTest, SliceMiddleAxis) {
  Tensor a(Shape{2, 4, 2});
  for (int64_t i = 0; i < a.numel(); ++i) {
    a.mutable_data()[i] = static_cast<float>(i);
  }
  Tensor s = Slice(a, 1, 1, 3);
  ASSERT_EQ(s.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(s.at({0, 0, 0}), a.at({0, 1, 0}));
  EXPECT_EQ(s.at({1, 1, 1}), a.at({1, 2, 1}));
}

TEST(LayoutTest, ConcatAxis1) {
  Tensor a = Tensor::Full({2, 1, 2}, 1.0f);
  Tensor b = Tensor::Full({2, 2, 2}, 2.0f);
  Tensor c = Concat({a, b}, 1);
  ASSERT_EQ(c.shape(), (Shape{2, 3, 2}));
  EXPECT_EQ(c.at({0, 0, 0}), 1.0f);
  EXPECT_EQ(c.at({0, 2, 1}), 2.0f);
  EXPECT_EQ(c.at({1, 1, 0}), 2.0f);
}

TEST(LayoutTest, ConcatThenSliceInverts) {
  Rng rng(5);
  Tensor a = Tensor::RandN({3, 2}, &rng);
  Tensor b = Tensor::RandN({3, 4}, &rng);
  Tensor c = Concat({a, b}, 1);
  EXPECT_TRUE(AllClose(Slice(c, 1, 0, 2), a));
  EXPECT_TRUE(AllClose(Slice(c, 1, 2, 6), b));
}

TEST(LayoutTest, TakeRows) {
  Tensor a(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor picked = TakeRows(a, {2, 0, 2});
  ASSERT_EQ(picked.shape(), (Shape{3, 2}));
  EXPECT_EQ(picked.at({0, 0}), 5.0f);
  EXPECT_EQ(picked.at({1, 1}), 2.0f);
  EXPECT_EQ(picked.at({2, 0}), 5.0f);
}

TEST(ReductionTest, GlobalReductions) {
  Tensor t(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(SumAll(t), 10.0f);
  EXPECT_EQ(MeanAll(t), 2.5f);
  EXPECT_EQ(MaxAll(t), 4.0f);
  EXPECT_EQ(MinAll(t), 1.0f);
}

TEST(ReductionTest, SumAxis) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = Sum(t, 0);
  ASSERT_EQ(s0.shape(), (Shape{3}));
  EXPECT_EQ(s0[0], 5.0f);
  Tensor s1k = Sum(t, 1, /*keepdim=*/true);
  ASSERT_EQ(s1k.shape(), (Shape{2, 1}));
  EXPECT_EQ(s1k.at({1, 0}), 15.0f);
  Tensor sneg = Sum(t, -1);
  EXPECT_EQ(sneg[0], 6.0f);
}

TEST(ReductionTest, MeanVariance) {
  Tensor t(Shape{1, 4}, {2, 4, 6, 8});
  EXPECT_EQ(Mean(t, 1)[0], 5.0f);
  EXPECT_EQ(Variance(t, 1)[0], 5.0f);  // population variance
}

TEST(ReductionTest, MaxAlongAndArgMax) {
  Tensor t(Shape{2, 3}, {1, 9, 3, 7, 2, 5});
  Tensor m = MaxAlong(t, 1);
  EXPECT_EQ(m[0], 9.0f);
  EXPECT_EQ(m[1], 7.0f);
  auto arg = ArgMaxLast(t);
  EXPECT_EQ(arg[0], 1);
  EXPECT_EQ(arg[1], 0);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(6);
  Tensor t = Tensor::RandN({4, 7}, &rng, 3.0f);
  Tensor s = Softmax(t);
  for (int64_t i = 0; i < 4; ++i) {
    float sum = 0;
    for (int64_t j = 0; j < 7; ++j) {
      const float v = s.at({i, j});
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Tensor t(Shape{1, 2}, {1000.0f, 999.0f});
  Tensor s = Softmax(t);
  EXPECT_TRUE(std::isfinite(s[0]));
  EXPECT_NEAR(s[0] + s[1], 1.0f, 1e-6f);
  EXPECT_GT(s[0], s[1]);
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(7);
  Tensor t = Tensor::RandN({3, 5}, &rng);
  Tensor ls = LogSoftmax(t);
  Tensor ref = Log(Softmax(t));
  EXPECT_LT(MaxAbsDiff(ls, ref), 1e-5f);
}

// ---------------------------------------------------------------------------
// Non-finite edge contract for softmax/log-softmax (scalar kernels, then the
// same contract through the SIMD dispatch). Before the fix, a +inf or
// all--inf row produced inf-inf = NaN garbage; now: NaN anywhere poisons the
// row, all--inf rows are uniform, +inf entries split the probability mass.

constexpr float kInfF = std::numeric_limits<float>::infinity();
constexpr float kNanF = std::numeric_limits<float>::quiet_NaN();

void CheckSoftmaxEdgeContract(const char* mode) {
  // Row 0: ordinary finite logits. Row 1: +FLT_MAX dominates but stays
  // finite. Row 2: one NaN. Row 3: all -inf. Row 4: two +inf entries.
  const float mx = std::numeric_limits<float>::max();
  Tensor t(Shape{5, 4}, {0.5f,  -1.0f, 2.0f,  0.0f,      //
                         mx,    0.0f,  -mx,   1.0f,      //
                         1.0f,  kNanF, 2.0f,  3.0f,      //
                         -kInfF, -kInfF, -kInfF, -kInfF,  //
                         0.0f,  kInfF, kInfF, -kInfF});
  Tensor s = Softmax(t);
  float sum0 = 0.0f;
  for (int64_t j = 0; j < 4; ++j) sum0 += s.at({0, j});
  EXPECT_NEAR(sum0, 1.0f, 1e-5f) << mode;

  EXPECT_NEAR(s.at({1, 0}), 1.0f, 1e-6f) << mode;
  EXPECT_NEAR(s.at({1, 2}), 0.0f, 1e-6f) << mode;
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(std::isfinite(s.at({1, j}))) << mode << " j=" << j;
    EXPECT_TRUE(std::isnan(s.at({2, j}))) << mode << " j=" << j;
    EXPECT_EQ(s.at({3, j}), 0.25f) << mode << " j=" << j;
  }
  EXPECT_EQ(s.at({4, 0}), 0.0f) << mode;
  EXPECT_EQ(s.at({4, 1}), 0.5f) << mode;
  EXPECT_EQ(s.at({4, 2}), 0.5f) << mode;
  EXPECT_EQ(s.at({4, 3}), 0.0f) << mode;

  Tensor ls = LogSoftmax(t);
  EXPECT_NEAR(ls.at({1, 0}), 0.0f, 1e-6f) << mode;
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(std::isnan(ls.at({2, j}))) << mode << " j=" << j;
    EXPECT_NEAR(ls.at({3, j}), -std::log(4.0f), 1e-6f) << mode << " j=" << j;
  }
  EXPECT_EQ(ls.at({4, 0}), -kInfF) << mode;
  EXPECT_NEAR(ls.at({4, 1}), -std::log(2.0f), 1e-6f) << mode;
  EXPECT_EQ(ls.at({4, 3}), -kInfF) << mode;
}

TEST(SoftmaxTest, NonFiniteEdgeContractScalar) {
  simd::ScopedSimdMode simd_off(false);
  CheckSoftmaxEdgeContract("scalar");
}

TEST(SoftmaxTest, NonFiniteEdgeContractSimd) {
  simd::ScopedSimdMode simd_on(true);
  CheckSoftmaxEdgeContract("simd");
}

TEST(SoftmaxTest, FiniteRowsUnchangedByEdgeHandling) {
  // The non-finite pre-pass must not perturb a single bit of ordinary rows:
  // for finite inputs the new kernel runs the exact pre-fix arithmetic.
  simd::ScopedSimdMode simd_off(false);
  Rng rng(29);
  Tensor t = Tensor::RandN({8, 33}, &rng, 5.0f);
  Tensor s = Softmax(t);
  for (int64_t i = 0; i < 8; ++i) {
    std::vector<float> want(33);
    const float* row = t.data() + i * 33;
    // Reference: classic max-subtracted kernel, same accumulation order.
    float m = row[0];
    for (int64_t j = 1; j < 33; ++j) m = std::max(m, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < 33; ++j) {
      want[static_cast<size_t>(j)] = std::exp(row[j] - m);
      denom += want[static_cast<size_t>(j)];
    }
    const float inv = 1.0f / denom;
    for (int64_t j = 0; j < 33; ++j) {
      EXPECT_EQ(s.at({i, j}), want[static_cast<size_t>(j)] * inv)
          << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------------
// GELU numerical-edge contract. Before the fix, GeluScalar(-inf) evaluated
// inf * 0 = NaN; the saturation guard returns the asymptote instead and
// cannot change any finite result (tanh already saturates to exactly +/-1
// well inside |x| = 8).

TEST(UnaryTest, GeluEdgeValues) {
  const float mx = std::numeric_limits<float>::max();
  Tensor t(Shape{8}, {kInfF, -kInfF, kNanF, mx, -mx, 1e30f, -1e30f, -3000.0f});
  Tensor g = Gelu(t);
  EXPECT_EQ(g[0], kInfF);
  EXPECT_EQ(g[1], 0.0f);
  EXPECT_TRUE(std::signbit(g[1]));  // -0.0: the left asymptote from below
  EXPECT_TRUE(std::isnan(g[2]));
  EXPECT_EQ(g[3], mx);   // x^3 would overflow; the guard short-circuits
  EXPECT_EQ(g[4], 0.0f);
  EXPECT_EQ(g[5], 1e30f);
  EXPECT_EQ(g[6], 0.0f);
  EXPECT_EQ(g[7], 0.0f);
}

TEST(UnaryTest, GeluFiniteAndTailMonotoneEverywhere) {
  // Finite in -> finite out, across 15 decades up to FLT_MAX; and the
  // positive tail (x >= 1) is non-decreasing through the guard boundary.
  float prev = 0.0f;
  for (int e = -4; e <= 38; ++e) {
    const float x = std::pow(10.0f, static_cast<float>(e));
    const float gp = ops::detail::GeluScalar(x);
    const float gn = ops::detail::GeluScalar(-x);
    EXPECT_TRUE(std::isfinite(gp)) << x;
    EXPECT_TRUE(std::isfinite(gn)) << -x;
    EXPECT_GE(gn, -0.2f) << -x;  // global minimum of GELU is ~ -0.17
    if (e >= 0) {
      EXPECT_GE(gp, prev) << x;
      prev = gp;
    }
  }
  // Dense sweep across the saturation boundary: non-decreasing, no step.
  prev = ops::detail::GeluScalar(7.9f);
  for (float x = 7.9f; x <= 8.1f; x += 0.001f) {
    const float g = ops::detail::GeluScalar(x);
    EXPECT_GE(g, prev - 1e-5f) << x;
    EXPECT_NEAR(g, x, 1e-4f) << x;
    prev = g;
  }
}

TEST(UnaryTest, GeluGuardIsContinuousAtSaturation) {
  // Just inside the guard the tanh form must already sit on the asymptote
  // to float precision, otherwise the guard would introduce a step.
  for (float x : {7.5f, 7.9f, 7.999f}) {
    EXPECT_NEAR(ops::detail::GeluScalar(x), x, 1e-4f) << x;
    EXPECT_NEAR(ops::detail::GeluScalar(-x), 0.0f, 1e-4f) << -x;
    EXPECT_LE(ops::detail::GeluScalar(-x), 0.0f) << -x;
  }
  EXPECT_EQ(ops::detail::GeluScalar(8.0f), 8.0f);
  EXPECT_EQ(ops::detail::GeluScalar(-8.0f), -0.0f);
  EXPECT_TRUE(std::signbit(ops::detail::GeluScalar(-8.0f)));
}

TEST(UnaryTest, GeluEdgeMatrixAgreesAcrossEagerAndSimd) {
  // The eager kernel (GeluScalar), the graph executor's fused stage (same
  // scalar function), and the SIMD kernels must agree exactly on every
  // edge input: all guards fire before any polynomial can differ.
  const float mx = std::numeric_limits<float>::max();
  Tensor t(Shape{10}, {kInfF, -kInfF, kNanF, mx, -mx, 8.0f, -8.0f, 20.0f,
                       -20.0f, -1e30f});
  Tensor eager = Gelu(t);
  Tensor vec;
  {
    simd::ScopedSimdMode simd_on(true);
    vec = Gelu(t);
  }
  for (int64_t i = 0; i < t.numel(); ++i) {
    const float a = eager[i];
    const float b = vec[i];
    const float c = simd::GeluS(t.data()[i]);
    if (std::isnan(a)) {
      EXPECT_TRUE(std::isnan(b) && std::isnan(c)) << i;
    } else {
      EXPECT_EQ(a, b) << i;
      EXPECT_EQ(a, c) << i;
      EXPECT_EQ(std::signbit(a), std::signbit(b)) << i;
    }
  }
}

TEST(NormTest, KnownValue) {
  Tensor t(Shape{2}, {3, 4});
  EXPECT_NEAR(Norm(t), 5.0f, 1e-6f);
}

TEST(AllCloseTest, RespectsTolerance) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b(Shape{2}, {1.0f, 2.00001f});
  EXPECT_TRUE(AllClose(a, b, 1e-4f));
  EXPECT_FALSE(AllClose(a, b, 1e-7f));
  Tensor c(Shape{3});
  EXPECT_FALSE(AllClose(a, c));  // shape mismatch
}

}  // namespace
}  // namespace tsfm
