#include <cstdio>

#include <gtest/gtest.h>

#include "models/moment.h"
#include "models/pretrained.h"
#include "models/vit.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

using models::FoundationModelConfig;
using models::MomentModel;
using models::MomentTestConfig;
using models::PretrainOptions;
using models::VitModel;
using models::VitTestConfig;

nn::ForwardContext EvalCtx() { return nn::ForwardContext{false, nullptr}; }

PretrainOptions TinyPretrain() {
  PretrainOptions o;
  o.corpus_size = 32;
  o.series_length = 32;
  o.batch_size = 16;
  o.epochs = 2;
  return o;
}

TEST(MomentTest, PatchCountAndTokenShapes) {
  Rng rng(1);
  MomentModel model(MomentTestConfig(), &rng);
  EXPECT_EQ(model.NumPatches(32), 4);  // patch_len 8
  EXPECT_EQ(model.NumPatches(35), 4);  // tail dropped
  EXPECT_EQ(model.NumPatches(5), 1);   // padded up
  Tensor series = Tensor::RandN({3, 32}, &rng);
  ag::Var tokens = model.EncodeSeries(ag::Constant(series), EvalCtx());
  EXPECT_EQ(tokens.shape(), (Shape{3, 4, 16}));
}

TEST(MomentTest, ShortSeriesPadded) {
  Rng rng(2);
  MomentModel model(MomentTestConfig(), &rng);
  Tensor series = Tensor::RandN({2, 5}, &rng);  // shorter than one patch
  ag::Var tokens = model.EncodeSeries(ag::Constant(series), EvalCtx());
  EXPECT_EQ(tokens.shape(), (Shape{2, 1, 16}));
}

TEST(MomentTest, EncodeChannelsPoolsToEmbedding) {
  Rng rng(3);
  MomentModel model(MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({4, 32, 3}, &rng);  // (B, T, D)
  ag::Var emb = model.EncodeChannels(ag::Constant(x), EvalCtx());
  EXPECT_EQ(emb.shape(), (Shape{4, 16}));
}

TEST(MomentTest, ChannelOrderInvarianceOfPooledEmbedding) {
  // Mean pooling over channels makes the embedding permutation-invariant in
  // the channel axis — each channel is encoded independently.
  Rng rng(4);
  MomentModel model(MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({2, 16, 3}, &rng);
  Tensor x_swapped(Shape{2, 16, 3});
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t t = 0; t < 16; ++t) {
      x_swapped.at({b, t, 0}) = x.at({b, t, 2});
      x_swapped.at({b, t, 1}) = x.at({b, t, 1});
      x_swapped.at({b, t, 2}) = x.at({b, t, 0});
    }
  }
  Tensor e1 = model.EncodeChannels(ag::Constant(x), EvalCtx()).value();
  Tensor e2 = model.EncodeChannels(ag::Constant(x_swapped), EvalCtx()).value();
  EXPECT_LT(MaxAbsDiff(e1, e2), 1e-4f);
}

TEST(MomentTest, GradFlowsToInput) {
  Rng rng(5);
  MomentModel model(MomentTestConfig(), &rng);
  ag::Var x(Tensor::RandN({1, 16, 2}, &rng), true);
  ag::Var emb = model.EncodeChannels(x, EvalCtx());
  ag::SumAll(ag::Square(emb)).Backward();
  EXPECT_GT(Norm(x.grad()), 0.0f);
}

TEST(MomentTest, PretrainReducesReconstructionLoss) {
  Rng rng(6);
  FoundationModelConfig config = MomentTestConfig();
  MomentModel model(config, &rng);
  PretrainOptions o = TinyPretrain();
  o.epochs = 1;
  auto first = model.Pretrain(o);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  o.epochs = 6;
  auto later = model.Pretrain(o);
  ASSERT_TRUE(later.ok());
  EXPECT_LT(*later, *first);
}

TEST(MomentTest, PretrainRejectsBadMaskRatio) {
  Rng rng(7);
  MomentModel model(MomentTestConfig(), &rng);
  PretrainOptions o = TinyPretrain();
  o.mask_ratio = 0.0f;
  EXPECT_FALSE(model.Pretrain(o).ok());
  o.mask_ratio = 1.0f;
  EXPECT_FALSE(model.Pretrain(o).ok());
}

TEST(MomentDeathTest, RejectsOverlappingPatches) {
  Rng rng(8);
  FoundationModelConfig c = MomentTestConfig();
  c.patch_stride = 4;
  EXPECT_DEATH(MomentModel(c, &rng), "non-overlapping");
}

TEST(VitTest, OverlappingPatchCount) {
  Rng rng(9);
  VitModel model(VitTestConfig(), &rng);
  // patch_len 8, stride 4: (32 - 8) / 4 + 1 = 7.
  EXPECT_EQ(model.NumPatches(32), 7);
  EXPECT_EQ(model.NumPatches(8), 1);
  EXPECT_EQ(model.NumPatches(4), 1);  // padded
  Tensor series = Tensor::RandN({2, 32}, &rng);
  ag::Var tokens = model.EncodeSeries(ag::Constant(series), EvalCtx());
  EXPECT_EQ(tokens.shape(), (Shape{2, 7, 16}));
}

TEST(VitTest, EncodeChannelsShape) {
  Rng rng(10);
  VitModel model(VitTestConfig(), &rng);
  Tensor x = Tensor::RandN({3, 24, 4}, &rng);
  ag::Var emb = model.EncodeChannels(ag::Constant(x), EvalCtx());
  EXPECT_EQ(emb.shape(), (Shape{3, 16}));
}

TEST(VitTest, PretrainReducesContrastiveLoss) {
  Rng rng(11);
  VitModel model(VitTestConfig(), &rng);
  PretrainOptions o = TinyPretrain();
  o.epochs = 1;
  auto first = model.Pretrain(o);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  o.epochs = 6;
  auto later = model.Pretrain(o);
  ASSERT_TRUE(later.ok());
  EXPECT_LT(*later, *first);
}

TEST(VitTest, PretrainRejectsBadTemperature) {
  Rng rng(12);
  VitModel model(VitTestConfig(), &rng);
  PretrainOptions o = TinyPretrain();
  o.temperature = 0.0f;
  EXPECT_FALSE(model.Pretrain(o).ok());
}

TEST(PretrainedCacheTest, SecondLoadSkipsPretraining) {
  const std::string path = ::testing::TempDir() + "/moment_cache.ckpt";
  std::remove(path.c_str());
  PretrainOptions o = TinyPretrain();
  auto first = models::LoadOrPretrain(models::ModelKind::kMoment,
                                      MomentTestConfig(), o, path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = models::LoadOrPretrain(models::ModelKind::kMoment,
                                       MomentTestConfig(), o, path);
  ASSERT_TRUE(second.ok());
  // Same weights -> same embeddings.
  Rng rng(13);
  Tensor x = Tensor::RandN({2, 32, 2}, &rng);
  Tensor e1 = (*first)->EncodeChannels(ag::Constant(x), EvalCtx()).value();
  Tensor e2 = (*second)->EncodeChannels(ag::Constant(x), EvalCtx()).value();
  EXPECT_TRUE(AllClose(e1, e2));
  std::remove(path.c_str());
}

TEST(PretrainedCacheTest, EmptyPathSkipsCaching) {
  PretrainOptions o = TinyPretrain();
  o.epochs = 1;
  auto model = models::LoadOrPretrain(models::ModelKind::kVit, VitTestConfig(),
                                      o, "");
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->NumParameters(), 0);
}

TEST(ModelKindTest, Names) {
  EXPECT_STREQ(models::ModelKindName(models::ModelKind::kMoment), "MOMENT");
  EXPECT_STREQ(models::ModelKindName(models::ModelKind::kVit), "ViT");
}

TEST(ConfigTest, SmallConfigsAreSane) {
  auto m = models::MomentSmallConfig();
  EXPECT_EQ(m.patch_len, m.patch_stride);
  EXPECT_EQ(m.d_model % m.num_heads, 0);
  auto v = models::VitSmallConfig();
  EXPECT_LT(v.patch_stride, v.patch_len);
  EXPECT_EQ(v.d_model % v.num_heads, 0);
}

}  // namespace
}  // namespace tsfm
