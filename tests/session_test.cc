// InferenceSession thread-safety: many threads hammering one immutable
// fitted session must each see predictions bit-identical to the serial
// reference. Built with -DTSFM_SANITIZE=thread in CI, this is the TSan
// witness for the serving path (encoder forward, graph executor, buffer
// pool, adapter transform, head forward).

#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/uea_like.h"
#include "finetune/classifier.h"
#include "graph/executor.h"
#include "pipeline/registry.h"
#include "pipeline/session.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

using finetune::ClassifierConfig;
using finetune::TsfmClassifier;

constexpr int kThreads = 8;
constexpr int kRoundsPerThread = 4;

data::DatasetPair Problem(uint64_t seed = 21) {
  data::UeaDatasetSpec spec{"sess_toy", "st", 40, 24, 8, 32, 2, 3};
  return data::GenerateUeaLike(spec, seed, data::GeneratorCaps{});
}

Result<TsfmClassifier> FittedClassifier(const data::DatasetPair& pair) {
  ClassifierConfig config;
  config.model_kind = models::ModelKind::kVit;
  config.model_config = models::VitTestConfig();
  config.pretrain.corpus_size = 48;
  config.pretrain.series_length = 32;
  config.pretrain.epochs = 1;
  config.finetune.head_epochs = 8;
  config.adapter_options.out_channels = 3;
  TSFM_ASSIGN_OR_RETURN(TsfmClassifier clf, TsfmClassifier::Create(config));
  TSFM_RETURN_IF_ERROR(clf.Fit(pair.train, &pair.test));
  return clf;
}

TEST(SessionTest, CreateValidatesInputs) {
  auto pair = Problem();
  auto clf = FittedClassifier(pair);
  ASSERT_TRUE(clf.ok()) << clf.status().ToString();
  auto session = clf->session();
  ASSERT_NE(session, nullptr);

  // Missing parts are rejected.
  pipeline::SessionOptions options;
  auto no_model = pipeline::InferenceSession::Create(
      nullptr, nullptr, nullptr, data::ChannelStats{}, 2, options);
  EXPECT_FALSE(no_model.ok());
  // Normalize without stats is rejected.
  std::shared_ptr<const models::FoundationModel> model(
      &clf->model(), [](const models::FoundationModel*) {});
  Rng rng(1);
  auto head = std::make_shared<models::ClassificationHead>(
      clf->model().embedding_dim(), 2, &rng);
  auto no_stats = pipeline::InferenceSession::Create(
      model, nullptr, head, data::ChannelStats{}, 2, options);
  EXPECT_FALSE(no_stats.ok());
  // Shape errors surface as InvalidArgument.
  EXPECT_FALSE(session->PredictBatch(Tensor(Shape{4, 32})).ok());
}

TEST(SessionTest, PredictMatchesClassifierBitIdentical) {
  auto pair = Problem(22);
  auto clf = FittedClassifier(pair);
  ASSERT_TRUE(clf.ok()) << clf.status().ToString();

  auto facade = clf->Predict(pair.test.x);
  ASSERT_TRUE(facade.ok());
  auto session = clf->session();
  auto direct = session->PredictBatch(pair.test.x);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*facade, *direct);

  // Single-sample surface agrees with the batch surface.
  Tensor one = Slice(pair.test.x, 0, 0, 1);
  auto single = session->Predict(one);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(*single, (*direct)[0]);

  // Describe lists the full composed pipeline with fitted state.
  const auto desc = session->Describe();
  ASSERT_EQ(desc.size(), 4u);  // normalize, adapt, embed, head
  EXPECT_EQ(desc[0].name, "normalize");
  EXPECT_EQ(desc[1].name, "adapt");
  EXPECT_EQ(desc[2].name, "embed");
  EXPECT_EQ(desc[3].name, "head");
  for (const auto& d : desc) {
    EXPECT_TRUE(d.fitted);
    EXPECT_GT(d.state_bytes, 0);
  }
}

// The satellite requirement: >= 8 threads hammer one InferenceSession
// concurrently; every thread's every round must be bit-identical to the
// serial reference.
TEST(SessionTest, ConcurrentPredictIsBitIdenticalToSerial) {
  auto pair = Problem(23);
  auto clf = FittedClassifier(pair);
  ASSERT_TRUE(clf.ok()) << clf.status().ToString();
  std::shared_ptr<const pipeline::InferenceSession> session = clf->session();
  ASSERT_NE(session, nullptr);

  const auto reference = session->PredictBatch(pair.test.x);
  ASSERT_TRUE(reference.ok());
  const auto ref_logits = session->Logits(pair.test.x);
  ASSERT_TRUE(ref_logits.ok());
  const Tensor ref_contig = ref_logits->Contiguous();

  std::vector<int> mismatches(kThreads, 0);
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        auto preds = session->PredictBatch(pair.test.x);
        if (!preds.ok()) {
          ++failures[t];
          continue;
        }
        if (*preds != *reference) ++mismatches[t];
        auto logits = session->Logits(pair.test.x);
        if (!logits.ok()) {
          ++failures[t];
          continue;
        }
        const Tensor contig = logits->Contiguous();
        if (contig.numel() != ref_contig.numel() ||
            std::memcmp(contig.data(), ref_contig.data(),
                        static_cast<size_t>(contig.numel()) * sizeof(float)) !=
                0) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

// Same hammer with the graph executor engaged: the compiled-graph cache is
// shared mutable state inside the (const) model, so this is the interesting
// TSan surface.
TEST(SessionTest, ConcurrentPredictUnderGraphModeIsBitIdentical) {
  auto pair = Problem(24);
  auto clf = FittedClassifier(pair);
  ASSERT_TRUE(clf.ok()) << clf.status().ToString();
  auto session = clf->session();

  const bool saved_mode = graph::GraphModeEnabled();
  graph::SetGraphMode(false);
  const auto eager_reference = session->PredictBatch(pair.test.x);
  ASSERT_TRUE(eager_reference.ok());

  graph::SetGraphMode(true);
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        auto preds = session->PredictBatch(pair.test.x);
        if (!preds.ok() || *preds != *eager_reference) ++mismatches[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  graph::SetGraphMode(saved_mode);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

// Registry hot-swap under concurrent readers: Get always returns a usable
// session (old or new, never torn), and in-flight predictions on the
// swapped-out session finish correctly.
TEST(SessionTest, RegistryHotSwapUnderConcurrentReaders) {
  auto pair = Problem(25);
  auto clf = FittedClassifier(pair);
  ASSERT_TRUE(clf.ok()) << clf.status().ToString();
  auto session_a = clf->session();
  // Refit publishes a distinct session; the old one stays valid.
  ASSERT_TRUE(clf->Fit(pair.train, &pair.test).ok());
  auto session_b = clf->session();
  ASSERT_NE(session_a, session_b);

  const auto ref_a = session_a->PredictBatch(pair.test.x);
  const auto ref_b = session_b->PredictBatch(pair.test.x);
  ASSERT_TRUE(ref_a.ok());
  ASSERT_TRUE(ref_b.ok());

  pipeline::Registry registry;
  ASSERT_TRUE(registry.Install("clf", session_a).ok());

  std::vector<int> errors(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        auto live = registry.Get("clf");
        if (live == nullptr) {
          ++errors[t];
          continue;
        }
        auto preds = live->PredictBatch(pair.test.x);
        if (!preds.ok()) {
          ++errors[t];
          continue;
        }
        // Whichever session the swap raced to, the result must match that
        // session's serial reference.
        if (*preds != *ref_a && *preds != *ref_b) ++errors[t];
      }
    });
  }
  // Swap mid-flight.
  ASSERT_TRUE(registry.Install("clf", session_b).ok());
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(errors[t], 0) << "thread " << t;
  }
  EXPECT_EQ(registry.Get("clf"), session_b);
}

}  // namespace
}  // namespace tsfm
