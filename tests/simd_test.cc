// SIMD transcendental kernels + int8 quantized inference path.
//
// The two contracts under test:
//   1. Row kernels are bit-identical to their scalar reference applied
//      element-wise (any length, any split) — this is what carries the
//      repo's thread-count determinism into SIMD mode.
//   2. The quantized path is exact integer arithmetic after quantization,
//      so it is bit-identical across thread counts and across kernel
//      choices, and a quantized checkpoint round-trips to the very same
//      int8 images (and therefore the very same predictions).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "graph/executor.h"
#include "models/foundation_model.h"
#include "models/moment.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "simd/quant.h"
#include "simd/simd_math.h"
#include "tensor/op_math.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

// Edge inputs shared by several tests: specials, saturation boundaries,
// and magnitudes that overflow x^3 in fp32.
const std::vector<float> EdgeInputs() {
  return {0.0f,   -0.0f,  1.0f,   -1.0f,  7.999f, -7.999f, 8.0f,
          -8.0f,  8.001f, -8.001f, 20.0f, -20.0f, 88.0f,   -88.0f,
          89.0f,  -89.0f, 1e30f,  -1e30f, 3e38f,  -3e38f,  kInf,
          -kInf,  kNan};
}

float RelErr(double got, double want) {
  if (want == 0.0) return static_cast<float>(std::fabs(got));
  return static_cast<float>(std::fabs(got - want) /
                            std::max(1e-30, std::fabs(want)));
}

TEST(SimdMathTest, ScalarReferencesMatchDoublePrecision) {
  // Sweep the useful ranges and compare against double-precision libm.
  // The Cephes-style polynomials are good to a few ulps; 1e-5 relative /
  // 1e-6 absolute is far above their error but far below anything a
  // training or inference path could absorb silently.
  Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    const float u = static_cast<float>(i - 10000) / 10000.0f;  // [-1, 1)
    const float x_exp = u * 87.0f;
    EXPECT_LT(RelErr(simd::ExpS(x_exp), std::exp(static_cast<double>(x_exp))),
              1e-5f)
        << "exp(" << x_exp << ")";
    const float x_tanh = u * 12.0f;
    EXPECT_NEAR(simd::TanhS(x_tanh), std::tanh(static_cast<double>(x_tanh)),
                2e-6)
        << "tanh(" << x_tanh << ")";
    const float x_erf = u * 6.0f;
    // A&S 7.1.26 is a 7-digit-absolute approximation, not a relative one.
    EXPECT_NEAR(simd::ErfS(x_erf), std::erf(static_cast<double>(x_erf)), 2e-6)
        << "erf(" << x_erf << ")";
    const float x_sig = u * 30.0f;
    EXPECT_NEAR(simd::SigmoidS(x_sig),
                1.0 / (1.0 + std::exp(-static_cast<double>(x_sig))), 2e-6)
        << "sigmoid(" << x_sig << ")";
    const float x_gelu = u * 7.5f;
    const double t = std::tanh(0.7978845608028654 *
                               (static_cast<double>(x_gelu) +
                                0.044715 * std::pow(x_gelu, 3.0)));
    EXPECT_NEAR(simd::GeluS(x_gelu), 0.5 * x_gelu * (1.0 + t), 4e-6)
        << "gelu(" << x_gelu << ")";
  }
}

TEST(SimdMathTest, ScalarReferenceSpecialValues) {
  EXPECT_EQ(simd::ExpS(kInf), kInf);
  EXPECT_EQ(simd::ExpS(-kInf), 0.0f);
  EXPECT_EQ(simd::ExpS(0.0f), 1.0f);
  EXPECT_TRUE(std::isnan(simd::ExpS(kNan)));
  // The overflow threshold itself must stay finite: exp(88.376...) ~ 2.4e38
  // fits in fp32, and a single-factor 2^n bit trick would lose it.
  EXPECT_TRUE(std::isfinite(simd::ExpS(88.3762626647949f)));
  EXPECT_GT(simd::ExpS(88.3762626647949f), 2e38f);
  EXPECT_EQ(simd::ExpS(89.0f), kInf);
  EXPECT_EQ(simd::ExpS(-104.0f), 0.0f);

  EXPECT_EQ(simd::TanhS(kInf), 1.0f);
  EXPECT_EQ(simd::TanhS(-kInf), -1.0f);
  EXPECT_TRUE(std::isnan(simd::TanhS(kNan)));
  EXPECT_EQ(simd::ErfS(kInf), 1.0f);
  EXPECT_EQ(simd::ErfS(-kInf), -1.0f);
  EXPECT_TRUE(std::isnan(simd::ErfS(kNan)));
  EXPECT_EQ(simd::SigmoidS(kInf), 1.0f);
  EXPECT_EQ(simd::SigmoidS(-kInf), 0.0f);
  EXPECT_TRUE(std::isnan(simd::SigmoidS(kNan)));

  EXPECT_EQ(simd::GeluS(kInf), kInf);
  EXPECT_EQ(simd::GeluS(-kInf), -0.0f);
  EXPECT_TRUE(std::signbit(simd::GeluS(-kInf)));
  EXPECT_TRUE(std::isnan(simd::GeluS(kNan)));
  // Saturation region: identical to the ops::detail::GeluScalar contract.
  EXPECT_EQ(simd::GeluS(3e38f), 3e38f);
  EXPECT_EQ(simd::GeluS(-3e38f), -0.0f);
}

TEST(SimdMathTest, GeluEdgeAgreementAcrossImplementations) {
  // The graph executor's fused eltwise loop calls ops::detail::GeluScalar in
  // scalar mode and simd::GeluS in SIMD mode. The two use different tanh
  // approximations, so mid-range values differ by ulps — but every
  // edge/saturation result must agree EXACTLY, because both fire their
  // guards before any polynomial runs.
  for (float x : EdgeInputs()) {
    const float a = ops::detail::GeluScalar(x);
    const float b = simd::GeluS(x);
    if (std::isnan(a) || std::isnan(b)) {
      EXPECT_TRUE(std::isnan(a) && std::isnan(b)) << "x=" << x;
    } else if (std::fabs(x) >= 8.0f) {
      EXPECT_EQ(a, b) << "x=" << x;
      EXPECT_EQ(std::signbit(a), std::signbit(b)) << "x=" << x;
    } else {
      EXPECT_NEAR(a, b, 4e-6f) << "x=" << x;
    }
  }
}

TEST(SimdMathTest, RowKernelsBitIdenticalToScalarReference) {
  using RowFn = void (*)(const float*, float*, int64_t);
  using ScalFn = float (*)(float);
  struct Pair {
    const char* name;
    RowFn row;
    ScalFn scal;
  };
  const Pair kPairs[] = {
      {"exp", simd::ExpRow, simd::ExpS},
      {"tanh", simd::TanhRow, simd::TanhS},
      {"erf", simd::ErfRow, simd::ErfS},
      {"gelu", simd::GeluRow, simd::GeluS},
      {"sigmoid", simd::SigmoidRow, simd::SigmoidS},
  };
  Rng rng(7);
  for (const auto& p : kPairs) {
    // Every length from 1 to 67 exercises all vector/tail split points.
    for (int64_t n = 1; n <= 67; ++n) {
      std::vector<float> in(static_cast<size_t>(n));
      for (auto& v : in) {
        v = (static_cast<float>(rng.Uniform()) - 0.5f) * 20.0f;
      }
      // Sprinkle specials into a few slots.
      if (n > 3) {
        in[0] = kNan;
        in[1] = kInf;
        in[2] = -kInf;
      }
      std::vector<float> got(static_cast<size_t>(n));
      std::vector<float> want(static_cast<size_t>(n));
      p.row(in.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        want[static_cast<size_t>(i)] = p.scal(in[static_cast<size_t>(i)]);
      }
      ASSERT_EQ(std::memcmp(got.data(), want.data(),
                            sizeof(float) * static_cast<size_t>(n)),
                0)
          << p.name << " length " << n << " (backend "
          << simd::BackendName() << ")";
      // In-place: out aliasing in must give the same bits.
      p.row(in.data(), in.data(), n);
      ASSERT_EQ(std::memcmp(in.data(), want.data(),
                            sizeof(float) * static_cast<size_t>(n)),
                0)
          << p.name << " in-place, length " << n;
    }
  }
}

TEST(SimdMathTest, SoftmaxRowFiniteMatchesScalarKernelClosely) {
  Rng rng(11);
  for (int64_t n : {1, 2, 7, 8, 9, 31, 64, 100}) {
    std::vector<float> in(static_cast<size_t>(n));
    for (auto& v : in) v = (static_cast<float>(rng.Uniform()) - 0.5f) * 10.0f;
    std::vector<float> simd_out(static_cast<size_t>(n));
    std::vector<float> ref_out(static_cast<size_t>(n));
    simd::SoftmaxRow(in.data(), simd_out.data(), n);
    ops::detail::SoftmaxRow(in.data(), ref_out.data(), n);
    float sum = 0.0f;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(simd_out[static_cast<size_t>(i)],
                  ref_out[static_cast<size_t>(i)], 1e-5f)
          << "n=" << n << " i=" << i;
      sum += simd_out[static_cast<size_t>(i)];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);

    std::vector<float> lsm(static_cast<size_t>(n));
    std::vector<float> lsm_ref(static_cast<size_t>(n));
    simd::LogSoftmaxRow(in.data(), lsm.data(), n);
    ops::detail::LogSoftmaxRow(in.data(), lsm_ref.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(lsm[static_cast<size_t>(i)],
                  lsm_ref[static_cast<size_t>(i)], 1e-4f)
          << "logsoftmax n=" << n << " i=" << i;
    }
    // In-place log-softmax (out aliases in) is part of the scalar kernel's
    // contract and the SIMD kernel must honor it too.
    simd::LogSoftmaxRow(in.data(), in.data(), n);
    ASSERT_EQ(std::memcmp(in.data(), lsm.data(),
                          sizeof(float) * static_cast<size_t>(n)),
              0)
        << "logsoftmax in-place, n=" << n;
  }
}

TEST(SimdMathTest, SoftmaxRowNonFiniteContract) {
  // Same contract as ops::detail::SoftmaxRow (tensor_ops_test covers the
  // scalar kernel): NaN poisons the row, all--inf is uniform, +inf entries
  // split the mass.
  {
    const float in[4] = {1.0f, kNan, 2.0f, 3.0f};
    float out[4];
    simd::SoftmaxRow(in, out, 4);
    for (float v : out) EXPECT_TRUE(std::isnan(v));
    simd::LogSoftmaxRow(in, out, 4);
    for (float v : out) EXPECT_TRUE(std::isnan(v));
  }
  {
    const float in[4] = {-kInf, -kInf, -kInf, -kInf};
    float out[4];
    simd::SoftmaxRow(in, out, 4);
    for (float v : out) EXPECT_EQ(v, 0.25f);
    simd::LogSoftmaxRow(in, out, 4);
    for (float v : out) EXPECT_NEAR(v, -std::log(4.0f), 1e-6f);
  }
  {
    const float in[5] = {0.0f, kInf, -1.0f, kInf, -kInf};
    float out[5];
    simd::SoftmaxRow(in, out, 5);
    EXPECT_EQ(out[0], 0.0f);
    EXPECT_EQ(out[1], 0.5f);
    EXPECT_EQ(out[2], 0.0f);
    EXPECT_EQ(out[3], 0.5f);
    EXPECT_EQ(out[4], 0.0f);
    simd::LogSoftmaxRow(in, out, 5);
    EXPECT_EQ(out[0], -kInf);
    EXPECT_NEAR(out[1], -std::log(2.0f), 1e-6f);
    EXPECT_EQ(out[3], out[1]);
    EXPECT_EQ(out[4], -kInf);
  }
}

// ---------------------------------------------------------------------------
// Quantization

TEST(QuantTest, QuantizeWeightScalesAndRoundTrip) {
  Rng rng(21);
  const int64_t k = 24, n = 10;
  std::vector<float> w(static_cast<size_t>(k * n));
  for (auto& v : w) v = (static_cast<float>(rng.Uniform()) - 0.5f) * 4.0f;
  // Column 3 all zero: must get scale 1 and all-zero int8, not 0/0.
  for (int64_t i = 0; i < k; ++i) w[static_cast<size_t>(i * n + 3)] = 0.0f;

  const simd::QuantizedMatrix q = simd::QuantizeWeight(w.data(), k, n);
  ASSERT_EQ(q.rows, k);
  ASSERT_EQ(q.cols, n);
  ASSERT_EQ(q.scales.size(), static_cast<size_t>(n));
  ASSERT_EQ(q.data.size(), static_cast<size_t>(k * n));
  ASSERT_FALSE(q.packed.empty());

  for (int64_t j = 0; j < n; ++j) {
    float maxabs = 0.0f;
    for (int64_t i = 0; i < k; ++i) {
      maxabs = std::max(maxabs, std::fabs(w[static_cast<size_t>(i * n + j)]));
    }
    const float want_scale = maxabs == 0.0f ? 1.0f : maxabs / 127.0f;
    EXPECT_FLOAT_EQ(q.scales[static_cast<size_t>(j)], want_scale) << j;
    for (int64_t i = 0; i < k; ++i) {
      const int8_t qv = q.data[static_cast<size_t>(i * n + j)];
      EXPECT_GE(qv, -127);
      EXPECT_LE(qv, 127);
      // Dequantization error is at most half a quantization step.
      const float deq = static_cast<float>(qv) * q.scales[static_cast<size_t>(j)];
      EXPECT_NEAR(deq, w[static_cast<size_t>(i * n + j)],
                  0.5f * q.scales[static_cast<size_t>(j)] + 1e-7f)
          << "(" << i << "," << j << ")";
    }
  }
  EXPECT_EQ(q.scales[3], 1.0f);
  for (int64_t i = 0; i < k; ++i) {
    EXPECT_EQ(q.data[static_cast<size_t>(i * n + 3)], 0);
  }
}

TEST(QuantTest, QuantMatMulCloseToFp32AndSelfConsistent) {
  Rng rng(22);
  const int64_t m = 17, k = 64, n = 23;
  Tensor a = Tensor::RandN({m, k}, &rng);
  Tensor w = Tensor::RandN({k, n}, &rng);
  Tensor ref = MatMul(a, w);

  const simd::QuantizedMatrix q = simd::QuantizeWeight(w.data(), k, n);
  Tensor got = Tensor::Empty({m, n});
  simd::QuantMatMul(a.data(), m, q, got.mutable_data());

  // Accuracy: randn inputs at k=64 keep the per-entry quantization noise
  // well under 0.5 absolute (entries are ~N(0, 8)).
  float max_diff = 0.0f;
  double sum_diff = 0.0;
  for (int64_t i = 0; i < m * n; ++i) {
    const float d = std::fabs(got.data()[i] - ref.data()[i]);
    max_diff = std::max(max_diff, d);
    sum_diff += d;
  }
  EXPECT_LT(max_diff, 0.5f);
  EXPECT_LT(sum_diff / static_cast<double>(m * n), 0.12);

  // Exactness: a second run returns the same bits.
  Tensor again = Tensor::Empty({m, n});
  simd::QuantMatMul(a.data(), m, q, again.mutable_data());
  EXPECT_EQ(std::memcmp(got.data(), again.data(),
                        sizeof(float) * static_cast<size_t>(m * n)),
            0);
}

TEST(QuantTest, QuantMatMulBitIdenticalAcrossThreadCounts) {
  const int saved = runtime::NumThreads();
  Rng rng(23);
  // k*n = 4096 -> ParallelFor grain 256: several chunks at m=600.
  const int64_t m = 600, k = 64, n = 64;
  Tensor a = Tensor::RandN({m, k}, &rng);
  Tensor w = Tensor::RandN({k, n}, &rng);
  const simd::QuantizedMatrix q = simd::QuantizeWeight(w.data(), k, n);

  runtime::SetNumThreads(1);
  Tensor ref = Tensor::Empty({m, n});
  simd::QuantMatMul(a.data(), m, q, ref.mutable_data());
  for (int threads : {2, 8}) {
    runtime::SetNumThreads(threads);
    Tensor got = Tensor::Empty({m, n});
    simd::QuantMatMul(a.data(), m, q, got.mutable_data());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          sizeof(float) * static_cast<size_t>(m * n)),
              0)
        << threads << " threads";
  }
  runtime::SetNumThreads(saved);
}

TEST(QuantTest, LinearQuantForwardCloseToFp32) {
  Rng rng(24);
  nn::Linear fc(32, 16, &rng);
  Tensor x = Tensor::RandN({4, 32}, &rng);

  Tensor fp32 = fc.Forward(ag::Constant(x)).value();
  Tensor q8;
  {
    simd::ScopedQuantMode quant(true);
    ag::NoGradGuard guard;
    q8 = fc.Forward(ag::Constant(x)).value();
  }
  ASSERT_EQ(q8.shape(), fp32.shape());
  for (int64_t i = 0; i < q8.numel(); ++i) {
    EXPECT_NEAR(q8.data()[i], fp32.data()[i], 0.15f) << i;
  }
}

TEST(QuantTest, QuantModeRequiresNoGrad) {
  // With gradients enabled the quantized path must stay out of the way —
  // training always sees the differentiable fp32 matmul.
  Rng rng(25);
  nn::Linear fc(8, 4, &rng);
  Tensor x = Tensor::RandN({2, 8}, &rng);
  Tensor fp32 = fc.Forward(ag::Constant(x)).value();
  simd::ScopedQuantMode quant(true);
  ag::Var w(x, true);  // grad-enabled input turns ag::GradEnabled() on
  Tensor got = fc.Forward(w).value();
  EXPECT_EQ(std::memcmp(got.data(), fp32.data(),
                        sizeof(float) * static_cast<size_t>(got.numel())),
            0);
}

// ---------------------------------------------------------------------------
// Quantized checkpoints

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

nn::ForwardContext EvalCtx() { return nn::ForwardContext{false, nullptr}; }

TEST(QuantCheckpointTest, SaveLoadPredictBitIdentical) {
  Rng rng(31);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  const std::string path = ::testing::TempDir() + "/quant_model.q8.ckpt";
  ASSERT_TRUE(nn::SaveQuantizedCheckpoint(model, path).ok());
  const auto is_quant = nn::IsQuantizedCheckpoint(path);
  ASSERT_TRUE(is_quant.ok());
  EXPECT_TRUE(*is_quant);

  Rng rng2(99);
  Tensor x = Tensor::RandN({3, 64, 2}, &rng2);

  simd::ScopedQuantMode quant(true);
  ag::NoGradGuard guard;

  // Two independent loads into fresh models serve identical bits, at any
  // thread count and regardless of graph mode: the stored int8 images are
  // adopted verbatim and the arithmetic is exact.
  Rng ra(1), rb(2);
  models::MomentModel ma(models::MomentTestConfig(), &ra);
  models::MomentModel mb(models::MomentTestConfig(), &rb);
  ASSERT_TRUE(nn::LoadCheckpoint(&ma, path).ok());
  ASSERT_TRUE(nn::LoadCheckpoint(&mb, path).ok());

  const int saved = runtime::NumThreads();
  runtime::SetNumThreads(1);
  Tensor ref = ma.EncodeChannels(ag::Constant(x), EvalCtx()).value();
  for (int threads : {1, 2, 8}) {
    runtime::SetNumThreads(threads);
    Tensor got_a = ma.EncodeChannels(ag::Constant(x), EvalCtx()).value();
    Tensor got_b = mb.EncodeChannels(ag::Constant(x), EvalCtx()).value();
    const size_t bytes = sizeof(float) * static_cast<size_t>(ref.numel());
    EXPECT_EQ(std::memcmp(got_a.data(), ref.data(), bytes), 0)
        << threads << " threads (model a)";
    EXPECT_EQ(std::memcmp(got_b.data(), ref.data(), bytes), 0)
        << threads << " threads (model b)";
  }
  // Graph mode must not change quant-mode bits (the executor is bypassed).
  {
    graph::ScopedGraphMode graph_on(true);
    Tensor got = ma.EncodeChannels(ag::Constant(x), EvalCtx()).value();
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          sizeof(float) * static_cast<size_t>(ref.numel())),
              0);
  }
  runtime::SetNumThreads(saved);
  std::remove(path.c_str());
}

TEST(QuantCheckpointTest, TranscodeMatchesDirectSaveByteForByte) {
  Rng rng(32);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  const std::string fp32_path = ::testing::TempDir() + "/tc_fp32.ckpt";
  const std::string q_direct = ::testing::TempDir() + "/tc_direct.q8.ckpt";
  const std::string q_transcode = ::testing::TempDir() + "/tc_trans.q8.ckpt";
  ASSERT_TRUE(nn::SaveCheckpoint(model, fp32_path).ok());
  ASSERT_TRUE(nn::SaveQuantizedCheckpoint(model, q_direct).ok());
  ASSERT_TRUE(nn::QuantizeCheckpointFile(fp32_path, q_transcode).ok());

  const std::string direct = ReadFileBytes(q_direct);
  const std::string transcoded = ReadFileBytes(q_transcode);
  ASSERT_FALSE(direct.empty());
  EXPECT_EQ(direct, transcoded);

  // And the quantized file is meaningfully smaller than the fp32 one.
  const std::string fp32 = ReadFileBytes(fp32_path);
  EXPECT_LT(direct.size(), fp32.size() / 2);

  const auto fp32_is_quant = nn::IsQuantizedCheckpoint(fp32_path);
  ASSERT_TRUE(fp32_is_quant.ok());
  EXPECT_FALSE(*fp32_is_quant);
  std::remove(fp32_path.c_str());
  std::remove(q_direct.c_str());
  std::remove(q_transcode.c_str());
}

TEST(QuantCheckpointTest, QuantizedLoadStaysCloseToFp32Model) {
  Rng rng(33);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  const std::string path = ::testing::TempDir() + "/close.q8.ckpt";
  ASSERT_TRUE(nn::SaveQuantizedCheckpoint(model, path).ok());
  Rng r2(5);
  models::MomentModel loaded(models::MomentTestConfig(), &r2);
  ASSERT_TRUE(nn::LoadCheckpoint(&loaded, path).ok());

  Rng rx(77);
  Tensor x = Tensor::RandN({2, 64, 2}, &rx);
  ag::NoGradGuard guard;
  Tensor ref = model.EncodeChannels(ag::Constant(x), EvalCtx()).value();
  // The loaded model runs fp32 here (quant mode off): its weights are the
  // dequantized images, so embeddings differ only by quantization noise.
  Tensor got = loaded.EncodeChannels(ag::Constant(x), EvalCtx()).value();
  ASSERT_EQ(got.shape(), ref.shape());
  for (int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got.data()[i], ref.data()[i], 0.05f) << i;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Mode plumbing

TEST(SimdModeTest, TensorOpsMatchScalarModeClosely) {
  Rng rng(41);
  Tensor x = Tensor::RandN({33, 17}, &rng);
  Tensor exp_ref = Exp(x);
  Tensor gelu_ref = Gelu(x);
  Tensor sm_ref = Softmax(x);
  simd::ScopedSimdMode simd_on(true);
  Tensor exp_simd = Exp(x);
  Tensor gelu_simd = Gelu(x);
  Tensor sm_simd = Softmax(x);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(exp_simd.data()[i], exp_ref.data()[i],
                2e-5f * std::fabs(exp_ref.data()[i]) + 1e-6f);
    EXPECT_NEAR(gelu_simd.data()[i], gelu_ref.data()[i], 1e-5f);
    EXPECT_NEAR(sm_simd.data()[i], sm_ref.data()[i], 1e-5f);
  }
}

TEST(SimdModeTest, ScopedModesRestore) {
  const bool simd_before = simd::SimdEnabled();
  const bool quant_before = simd::QuantModeEnabled();
  {
    simd::ScopedSimdMode a(true);
    simd::ScopedQuantMode b(true);
    EXPECT_TRUE(simd::SimdEnabled());
    EXPECT_TRUE(simd::QuantModeEnabled());
  }
  EXPECT_EQ(simd::SimdEnabled(), simd_before);
  EXPECT_EQ(simd::QuantModeEnabled(), quant_before);
}

}  // namespace
}  // namespace tsfm
