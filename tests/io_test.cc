// Durable artifact store: atomic writes, CRC-validated containers, the
// content-addressed embedding cache, and the corruption matrix — every
// truncation, bit flip, oversized length field or stale-magic file must come
// back as an error Status, never a crash or a gigabyte allocation, and a
// cache hit must be bit-identical to the miss path at any thread count.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/adapter.h"
#include "core/io_util.h"
#include "data/uea_like.h"
#include "finetune/finetune.h"
#include "io/artifact.h"
#include "io/embed_cache.h"
#include "io/hash.h"
#include "models/moment.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"

namespace tsfm {
namespace {

namespace fs = std::filesystem;

// Container magics, duplicated from the implementation on purpose: they are
// on-disk format constants, and the crafted-payload tests below need to
// build syntactically valid containers around hostile payloads.
constexpr uint64_t kCkptMagic = 0x32504B434D465354ULL;    // "TSFMCKP2"
constexpr uint64_t kAdapterMagic = 0x325044414D465354ULL;  // "TSFMADP2"

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = TempPath(name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(os)) << path;
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t CounterValue(const char* name) {
  return obs::Registry::Instance().GetCounter(name)->value();
}

// Scopes the embedding cache to a private directory and restores the
// process-wide configuration afterwards, so io_test never leaks cache state
// into other tests (or picks up a TSFM_CACHE_DIR from the environment).
class CacheDirGuard {
 public:
  explicit CacheDirGuard(const std::string& name, int64_t max_bytes = 0)
      : dir_(FreshDir(name)) {
    io::SetEmbedCacheDir(dir_);
    io::SetEmbedCacheMaxBytes(max_bytes);
  }
  ~CacheDirGuard() {
    io::SetEmbedCacheDir("");
    io::SetEmbedCacheMaxBytes(0);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownAnswer) {
  // The IEEE 802.3 / zlib check value.
  EXPECT_EQ(io::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(io::Crc32("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t one_shot = io::Crc32(data.data(), data.size());
  uint32_t chained = io::Crc32(data.data(), 10);
  chained = io::Crc32(data.data() + 10, data.size() - 10, chained);
  EXPECT_EQ(chained, one_shot);
}

// ---------------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------------

TEST(AtomicWriteTest, RoundTripAndOverwrite) {
  const std::string path = TempPath("atomic_roundtrip.bin");
  ASSERT_TRUE(io::WriteFileAtomic(path, "first contents").ok());
  EXPECT_EQ(ReadAll(path), "first contents");
  ASSERT_TRUE(io::WriteFileAtomic(path, "second").ok());
  EXPECT_EQ(ReadAll(path), "second");
}

TEST(AtomicWriteTest, FailedWriterKeepsOldFileAndLeavesNoTemp) {
  const std::string dir = FreshDir("atomic_fail");
  const std::string path = dir + "/artifact.bin";
  ASSERT_TRUE(io::WriteFileAtomic(path, "precious old bytes").ok());

  // The writer streams half a file and then reports a failure (a full disk,
  // say). The visible file must be untouched and the temp file cleaned up.
  Status s = io::WriteFileAtomic(path, [](std::ostream* os) {
    *os << "garbage that must never become visible";
    return Status::IoError("simulated mid-write failure");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ReadAll(path), "precious old bytes");
  int entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().filename().string(), "artifact.bin");
  }
  EXPECT_EQ(entries, 1);
}

// ---------------------------------------------------------------------------
// Artifact container
// ---------------------------------------------------------------------------

TEST(ArtifactTest, RoundTrip) {
  const std::string path = TempPath("artifact_roundtrip.bin");
  const std::string payload = "payload bytes \x00\x01\x02 with nulls";
  ASSERT_TRUE(io::WriteArtifact(path, kCkptMagic, 2, payload).ok());
  auto read = io::ReadArtifactPayload(path, kCkptMagic, 2);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
}

TEST(ArtifactTest, EmptyPayloadRoundTrips) {
  const std::string path = TempPath("artifact_empty.bin");
  ASSERT_TRUE(io::WriteArtifact(path, kCkptMagic, 2, "").ok());
  auto read = io::ReadArtifactPayload(path, kCkptMagic, 2);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->empty());
}

TEST(ArtifactTest, MissingFileIsNotFound) {
  auto read = io::ReadArtifactPayload(TempPath("does_not_exist.bin"),
                                      kCkptMagic, 2);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(ArtifactTest, WrongMagicAndVersionRejected) {
  const std::string path = TempPath("artifact_magic.bin");
  ASSERT_TRUE(io::WriteArtifact(path, kCkptMagic, 2, "abc").ok());
  EXPECT_FALSE(io::ReadArtifactPayload(path, kAdapterMagic, 2).ok());
  EXPECT_FALSE(io::ReadArtifactPayload(path, kCkptMagic, 3).ok());
}

TEST(ArtifactTest, EveryTruncationAndBitFlipRejected) {
  const std::string path = TempPath("artifact_matrix.bin");
  const std::string mutant = TempPath("artifact_mutant.bin");
  ASSERT_TRUE(io::WriteArtifact(path, kCkptMagic, 2, "corruption matrix "
                                                     "payload").ok());
  const std::string good = ReadAll(path);

  // Truncation at every byte boundary, including the empty file.
  for (size_t len = 0; len < good.size(); ++len) {
    WriteAll(mutant, good.substr(0, len));
    EXPECT_FALSE(io::ReadArtifactPayload(mutant, kCkptMagic, 2).ok())
        << "truncated to " << len << " bytes";
  }
  // A single flipped bit in every byte: magic, version, reserved, size
  // field, payload and CRC trailer are each covered by some check.
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ (1 << (i % 8)));
    WriteAll(mutant, bad);
    EXPECT_FALSE(io::ReadArtifactPayload(mutant, kCkptMagic, 2).ok())
        << "bit flip at byte " << i;
  }
  // Extra appended bytes break the exact payload_size == file-size check.
  WriteAll(mutant, good + "x");
  EXPECT_FALSE(io::ReadArtifactPayload(mutant, kCkptMagic, 2).ok());
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

TEST(CheckpointTest, RoundTripRestoresExactBytes) {
  Rng rng(7);
  nn::Linear src(3, 2, &rng);
  const std::string path = TempPath("ckpt_roundtrip.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(src, path).ok());

  Rng rng2(99);
  nn::Linear dst(3, 2, &rng2);
  Status s = nn::LoadCheckpoint(&dst, path);
  ASSERT_TRUE(s.ok()) << s.ToString();

  const auto a = src.NamedParameters();
  const auto b = dst.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const Tensor ta = a[i].second.value().Contiguous();
    const Tensor tb = b[i].second.value().Contiguous();
    ASSERT_EQ(ta.numel(), tb.numel());
    EXPECT_EQ(std::memcmp(ta.data(), tb.data(),
                          static_cast<size_t>(ta.numel()) * sizeof(float)),
              0)
        << a[i].first;
  }
}

TEST(CheckpointTest, FailedSaveLeavesPriorCheckpointIntact) {
  Rng rng(7);
  nn::Linear module(3, 2, &rng);
  const std::string path = TempPath("ckpt_atomic.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(module, path).ok());
  const std::string before = ReadAll(path);

  // SaveCheckpoint routes through WriteFileAtomic; simulate the write
  // failing partway on the same path and verify the old file survives and
  // still loads.
  Status s = io::WriteFileAtomic(path, [](std::ostream* os) {
    *os << "half a checkpoint";
    return Status::IoError("simulated crash during save");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ReadAll(path), before);
  Rng rng2(99);
  nn::Linear reload(3, 2, &rng2);
  EXPECT_TRUE(nn::LoadCheckpoint(&reload, path).ok());
}

TEST(CheckpointTest, EveryTruncationAndBitFlipRejected) {
  Rng rng(7);
  nn::Linear module(3, 2, &rng);
  const std::string path = TempPath("ckpt_matrix.ckpt");
  const std::string mutant = TempPath("ckpt_mutant.ckpt");
  ASSERT_TRUE(nn::SaveCheckpoint(module, path).ok());
  const std::string good = ReadAll(path);

  Rng rng2(99);
  nn::Linear target(3, 2, &rng2);
  for (size_t len = 0; len < good.size(); ++len) {
    WriteAll(mutant, good.substr(0, len));
    EXPECT_FALSE(nn::LoadCheckpoint(&target, mutant).ok())
        << "truncated to " << len << " bytes";
  }
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ (1 << (i % 8)));
    WriteAll(mutant, bad);
    EXPECT_FALSE(nn::LoadCheckpoint(&target, mutant).ok())
        << "bit flip at byte " << i;
  }
}

TEST(CheckpointTest, StalePreV2FileRejected) {
  // A file in the old unchecksummed format: bare magic + record count, no
  // container. The v2 loader must refuse it instead of parsing garbage.
  const std::string path = TempPath("ckpt_stale.ckpt");
  std::string old;
  AppendU64(&old, 0x313030304D465354ULL);  // "TSFM0001"
  AppendU64(&old, 2);
  old.append(64, '\0');
  WriteAll(path, old);
  Rng rng(7);
  nn::Linear module(3, 2, &rng);
  EXPECT_FALSE(nn::LoadCheckpoint(&module, path).ok());
}

// Crafted payloads wrapped in a *valid* container (correct magic, size and
// CRC) so only the payload-level bounds checks stand between a hostile
// length field and a huge allocation.
TEST(CheckpointTest, OversizedFieldsInValidContainerRejected) {
  const std::string path = TempPath("ckpt_crafted.ckpt");
  Rng rng(7);
  nn::Linear module(3, 2, &rng);

  auto expect_rejected = [&](const std::string& payload, const char* what) {
    ASSERT_TRUE(io::WriteArtifact(path, kCkptMagic, 2, payload).ok());
    EXPECT_FALSE(nn::LoadCheckpoint(&module, path).ok()) << what;
  };

  {  // A parameter count far beyond what the payload could hold.
    std::string p;
    AppendU64(&p, uint64_t{1} << 40);
    expect_rejected(p, "huge count");
  }
  {  // name_len larger than the remaining payload.
    std::string p;
    AppendU64(&p, 1);
    AppendU64(&p, uint64_t{1} << 40);
    expect_rejected(p, "huge name_len");
  }
  {  // Implausible rank.
    std::string p;
    AppendU64(&p, 1);
    AppendU64(&p, 1);
    p.push_back('w');
    AppendU64(&p, 9);  // ndim > 8
    expect_rejected(p, "ndim > 8");
  }
  {  // Zero dimension.
    std::string p;
    AppendU64(&p, 1);
    AppendU64(&p, 1);
    p.push_back('w');
    AppendU64(&p, 1);
    AppendU64(&p, 0);
    expect_rejected(p, "zero dim");
  }
  {  // Dims whose product overflows any sane allocation.
    std::string p;
    AppendU64(&p, 1);
    AppendU64(&p, 1);
    p.push_back('w');
    AppendU64(&p, 2);
    AppendU64(&p, uint64_t{1} << 31);
    AppendU64(&p, uint64_t{1} << 31);
    expect_rejected(p, "overflowing dims");
  }
  {  // A correct record followed by trailing junk.
    std::string p;
    AppendU64(&p, 0);
    p.append("trailing", 8);
    expect_rejected(p, "trailing bytes");
  }
}

// ---------------------------------------------------------------------------
// Adapter files
// ---------------------------------------------------------------------------

std::unique_ptr<core::Adapter> FittedVarAdapter() {
  core::AdapterOptions ao;
  ao.out_channels = 3;
  auto adapter = core::CreateAdapter(core::AdapterKind::kVar, ao);
  Rng rng(3);
  const Tensor x = Tensor::RandN({6, 16, 5}, &rng);
  std::vector<int64_t> y(6, 0);
  for (size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int64_t>(i % 2);
  EXPECT_TRUE(adapter->Fit(x, y).ok());
  return adapter;
}

TEST(AdapterFileTest, EveryTruncationAndBitFlipRejected) {
  auto adapter = FittedVarAdapter();
  core::AdapterOptions ao;
  ao.out_channels = 3;
  const std::string path = TempPath("adapter_matrix.adp");
  const std::string mutant = TempPath("adapter_mutant.adp");
  ASSERT_TRUE(core::SaveAdapter(*adapter, ao, path).ok());
  ASSERT_TRUE(core::LoadAdapter(path).ok());
  const std::string good = ReadAll(path);

  for (size_t len = 0; len < good.size(); ++len) {
    WriteAll(mutant, good.substr(0, len));
    EXPECT_FALSE(core::LoadAdapter(mutant).ok())
        << "truncated to " << len << " bytes";
  }
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ (1 << (i % 8)));
    WriteAll(mutant, bad);
    EXPECT_FALSE(core::LoadAdapter(mutant).ok()) << "bit flip at byte " << i;
  }
}

TEST(AdapterFileTest, OversizedVectorInValidContainerRejected) {
  // kind=kVar with a selected-channels vector claiming 2^40 entries; the
  // ReadInt64Vector bound must reject it before any allocation.
  std::string p;
  AppendU64(&p, static_cast<uint64_t>(core::AdapterKind::kVar));
  AppendU64(&p, 3);   // out_channels
  AppendU64(&p, 0);   // pca_scale
  AppendU64(&p, 1);   // pca_patch_window
  AppendU64(&p, 0);   // top_k
  AppendU64(&p, 42);  // seed
  AppendU64(&p, 5);   // state: in_channels
  AppendU64(&p, uint64_t{1} << 40);  // vector length
  const std::string path = TempPath("adapter_crafted.adp");
  ASSERT_TRUE(io::WriteArtifact(path, kAdapterMagic, 2, p).ok());
  EXPECT_FALSE(core::LoadAdapter(path).ok());
}

// ---------------------------------------------------------------------------
// io_util primitive bounds
// ---------------------------------------------------------------------------

TEST(IoUtilTest, ReadInt64VectorRejectsHugeLength) {
  std::string bytes;
  AppendU64(&bytes, uint64_t{1} << 40);
  std::istringstream is(bytes);
  std::vector<int64_t> v;
  Status s = core::io::ReadInt64Vector(&is, &v);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(v.empty());
}

TEST(IoUtilTest, ReadTensorRejectsNonPositiveAndOversizedDims) {
  {
    std::string bytes;
    AppendU64(&bytes, 1);  // ndim
    AppendU64(&bytes, 0);  // dim == 0
    std::istringstream is(bytes);
    Tensor t;
    EXPECT_FALSE(core::io::ReadTensor(&is, &t).ok());
  }
  {
    std::string bytes;
    AppendU64(&bytes, 2);
    AppendU64(&bytes, uint64_t{1} << 20);
    AppendU64(&bytes, uint64_t{1} << 20);  // product 2^40 > kMaxTensorElements
    std::istringstream is(bytes);
    Tensor t;
    EXPECT_FALSE(core::io::ReadTensor(&is, &t).ok());
  }
}

// ---------------------------------------------------------------------------
// Content hash
// ---------------------------------------------------------------------------

TEST(HashBuilderTest, DeterministicAndWellFormed) {
  io::HashBuilder a, b;
  a.AddString("hello");
  a.AddU64(42);
  b.AddString("hello");
  b.AddU64(42);
  EXPECT_EQ(a.HexDigest(), b.HexDigest());
  EXPECT_EQ(a.HexDigest().size(), 32u);
  EXPECT_EQ(a.HexDigest().find_first_not_of("0123456789abcdef"),
            std::string::npos);
}

TEST(HashBuilderTest, FieldBoundariesDoNotAlias) {
  io::HashBuilder ab_c, a_bc;
  ab_c.AddString("ab");
  ab_c.AddString("c");
  a_bc.AddString("a");
  a_bc.AddString("bc");
  EXPECT_NE(ab_c.HexDigest(), a_bc.HexDigest());
}

TEST(HashBuilderTest, TensorShapeMatters) {
  Rng rng(5);
  Tensor t = Tensor::RandN({2, 3}, &rng);
  Tensor r = t.Reshape({3, 2});
  io::HashBuilder h1, h2;
  h1.AddTensor(t);
  h2.AddTensor(r);
  EXPECT_NE(h1.HexDigest(), h2.HexDigest());
}

// ---------------------------------------------------------------------------
// Embedding cache
// ---------------------------------------------------------------------------

TEST(EmbedCacheTest, DisabledByDefault) {
  io::SetEmbedCacheDir("");
  if (io::EmbedCacheEnabled()) {
    GTEST_SKIP() << "TSFM_CACHE_DIR set in the environment";
  }
  auto miss = io::EmbedCacheLookup("0123456789abcdef0123456789abcdef");
  EXPECT_FALSE(miss.ok());
}

TEST(EmbedCacheTest, StoreLookupRoundTripIsBitIdentical) {
  CacheDirGuard cache("embed_cache_roundtrip");
  Rng rng(5);
  const Tensor t = Tensor::RandN({4, 7}, &rng);
  const std::string key = "00112233445566778899aabbccddeeff";

  const uint64_t miss0 = CounterValue("cache.miss");
  auto miss = io::EmbedCacheLookup(key);
  EXPECT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(CounterValue("cache.miss"), miss0 + 1);

  ASSERT_TRUE(io::EmbedCacheStore(key, t).ok());
  const uint64_t hit0 = CounterValue("cache.hit");
  auto hit = io::EmbedCacheLookup(key);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(CounterValue("cache.hit"), hit0 + 1);
  ASSERT_EQ(hit->ndim(), t.ndim());
  for (int64_t d = 0; d < t.ndim(); ++d) EXPECT_EQ(hit->dim(d), t.dim(d));
  EXPECT_EQ(std::memcmp(hit->Contiguous().data(), t.Contiguous().data(),
                        static_cast<size_t>(t.numel()) * sizeof(float)),
            0);
}

TEST(EmbedCacheTest, CorruptEntryIsReportedAndDeleted) {
  CacheDirGuard cache("embed_cache_corrupt");
  Rng rng(5);
  const std::string key = "ffeeddccbbaa99887766554433221100";
  ASSERT_TRUE(io::EmbedCacheStore(key, Tensor::RandN({8}, &rng)).ok());

  const std::string entry = cache.dir() + "/" + key + ".emb";
  std::string bytes = ReadAll(entry);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  WriteAll(entry, bytes);

  const uint64_t corrupt0 = CounterValue("cache.corrupt");
  auto lookup = io::EmbedCacheLookup(key);
  EXPECT_FALSE(lookup.ok());
  EXPECT_EQ(lookup.status().code(), StatusCode::kIoError);
  EXPECT_EQ(CounterValue("cache.corrupt"), corrupt0 + 1);
  EXPECT_FALSE(fs::exists(entry)) << "corrupt entry must be evicted";
  // The corrupt entry is gone, so the next lookup is a clean miss.
  EXPECT_EQ(io::EmbedCacheLookup(key).status().code(), StatusCode::kNotFound);
}

TEST(EmbedCacheTest, LruEvictionRespectsSizeCap) {
  CacheDirGuard cache("embed_cache_lru");
  Rng rng(5);
  const Tensor t = Tensor::RandN({256}, &rng);  // ~1 KiB per entry
  const std::string a = "aa112233445566778899aabbccddeeff";
  const std::string b = "bb112233445566778899aabbccddeeff";
  const std::string c = "cc112233445566778899aabbccddeeff";
  ASSERT_TRUE(io::EmbedCacheStore(a, t).ok());
  ASSERT_TRUE(io::EmbedCacheStore(b, t).ok());

  // Make the LRU order deterministic regardless of filesystem timestamp
  // granularity: entry `a` is clearly the oldest.
  const auto now = fs::last_write_time(cache.dir() + "/" + b + ".emb");
  fs::last_write_time(cache.dir() + "/" + a + ".emb",
                      now - std::chrono::seconds(10));

  const int64_t entry_bytes =
      static_cast<int64_t>(fs::file_size(cache.dir() + "/" + a + ".emb"));
  io::SetEmbedCacheMaxBytes(2 * entry_bytes + entry_bytes / 2);
  const uint64_t evict0 = CounterValue("cache.evictions");
  ASSERT_TRUE(io::EmbedCacheStore(c, t).ok());

  EXPECT_EQ(io::EmbedCacheLookup(a).status().code(), StatusCode::kNotFound)
      << "oldest entry should have been evicted";
  EXPECT_TRUE(io::EmbedCacheLookup(b).ok());
  EXPECT_TRUE(io::EmbedCacheLookup(c).ok());
  EXPECT_GE(CounterValue("cache.evictions"), evict0 + 1);
}

TEST(EmbedCacheTest, ScanAndClear) {
  CacheDirGuard cache("embed_cache_scan");
  Rng rng(5);
  const std::string a = "0a112233445566778899aabbccddeeff";
  const std::string b = "0b112233445566778899aabbccddeeff";
  ASSERT_TRUE(io::EmbedCacheStore(a, Tensor::RandN({16}, &rng)).ok());
  ASSERT_TRUE(io::EmbedCacheStore(b, Tensor::RandN({16}, &rng)).ok());

  auto entries = io::EmbedCacheScan(cache.dir(), /*verify=*/true);
  ASSERT_EQ(entries.size(), 2u);
  for (const auto& e : entries) {
    EXPECT_TRUE(e.valid) << e.key;
    EXPECT_GT(e.bytes, 0);
  }

  // Corrupt one entry; a verifying scan must flag it (but keep it — only a
  // lookup or `tsfm cache clear` removes files).
  const std::string entry = cache.dir() + "/" + a + ".emb";
  std::string bytes = ReadAll(entry);
  bytes.back() = static_cast<char>(bytes.back() ^ 1);
  WriteAll(entry, bytes);
  entries = io::EmbedCacheScan(cache.dir(), /*verify=*/true);
  ASSERT_EQ(entries.size(), 2u);
  int invalid = 0;
  for (const auto& e : entries) invalid += e.valid ? 0 : 1;
  EXPECT_EQ(invalid, 1);

  auto removed = io::EmbedCacheClear(cache.dir());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2);
  EXPECT_TRUE(io::EmbedCacheScan(cache.dir(), false).empty());
}

// ---------------------------------------------------------------------------
// Cached embedding path: bit-identical to the miss path, at any thread count
// ---------------------------------------------------------------------------

data::DatasetPair SmallProblem(uint64_t seed = 1) {
  data::UeaDatasetSpec spec{"toy", "toy", 48, 32, 8, 32, 2, 3};
  return data::GenerateUeaLike(spec, seed, data::GeneratorCaps{});
}

std::shared_ptr<models::MomentModel> TinyMoment(uint64_t seed = 11) {
  Rng rng(seed);
  auto model =
      std::make_shared<models::MomentModel>(models::MomentTestConfig(), &rng);
  models::PretrainOptions po;
  po.corpus_size = 48;
  po.series_length = 32;
  po.epochs = 2;
  EXPECT_TRUE(model->Pretrain(po).ok());
  return model;
}

TEST(EmbedCacheTest, EmbedDatasetCachedHitMatchesMissBitwise) {
  auto model = TinyMoment();
  auto pair = SmallProblem();
  const Tensor x = pair.train.x;

  // Reference: the plain (uncached) embed pass.
  io::SetEmbedCacheDir("");
  const Tensor plain = finetune::EmbedDataset(*model, x, 16, 5);

  CacheDirGuard cache("embed_cache_dataset");
  const uint64_t store0 = CounterValue("cache.store");
  const Tensor miss = finetune::EmbedDatasetCached(*model, x, 16, 5, "t");
  EXPECT_EQ(CounterValue("cache.store"), store0 + 1);
  const uint64_t hit0 = CounterValue("cache.hit");
  const Tensor hit = finetune::EmbedDatasetCached(*model, x, 16, 5, "t");
  EXPECT_EQ(CounterValue("cache.hit"), hit0 + 1);

  ASSERT_EQ(plain.numel(), miss.numel());
  ASSERT_EQ(plain.numel(), hit.numel());
  const size_t bytes = static_cast<size_t>(plain.numel()) * sizeof(float);
  EXPECT_EQ(std::memcmp(plain.Contiguous().data(), miss.Contiguous().data(),
                        bytes),
            0);
  EXPECT_EQ(std::memcmp(plain.Contiguous().data(), hit.Contiguous().data(),
                        bytes),
            0);

  // A different salt (strategy/adapter tag) must not collide.
  const uint64_t store1 = CounterValue("cache.store");
  finetune::EmbedDatasetCached(*model, x, 16, 5, "other");
  EXPECT_EQ(CounterValue("cache.store"), store1 + 1);
}

TEST(EmbedCacheTest, FineTuneSecondRunHitsCacheWithIdenticalAccuracy) {
  const int saved_threads = runtime::NumThreads();
  auto model = TinyMoment();
  auto pair = SmallProblem();
  finetune::FineTuneOptions options;
  options.strategy = finetune::Strategy::kHeadOnly;
  options.head_epochs = 40;
  options.batch_size = 16;

  CacheDirGuard cache("embed_cache_finetune");
  auto cold = finetune::FineTune(model.get(), nullptr, pair.train, pair.test,
                                 options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  // Second identical run: both embed passes (train + test) must come from
  // the cache and the result must be bit-identical, not merely close.
  const uint64_t hit0 = CounterValue("cache.hit");
  auto warm = finetune::FineTune(model.get(), nullptr, pair.train, pair.test,
                                 options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GE(CounterValue("cache.hit"), hit0 + 2);
  EXPECT_EQ(cold->test_accuracy, warm->test_accuracy);
  EXPECT_EQ(cold->train_accuracy, warm->train_accuracy);
  EXPECT_EQ(cold->final_loss, warm->final_loss);

  // And a run at a different thread count must hit the same entries (the
  // key hashes content, not schedule) with the same exact numbers.
  runtime::SetNumThreads(3);
  const uint64_t hit1 = CounterValue("cache.hit");
  auto threaded = finetune::FineTune(model.get(), nullptr, pair.train,
                                     pair.test, options);
  runtime::SetNumThreads(saved_threads);
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_GE(CounterValue("cache.hit"), hit1 + 2);
  EXPECT_EQ(cold->test_accuracy, threaded->test_accuracy);
  EXPECT_EQ(cold->train_accuracy, threaded->train_accuracy);
  EXPECT_EQ(cold->final_loss, threaded->final_loss);
}

}  // namespace
}  // namespace tsfm
