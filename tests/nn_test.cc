#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

using nn::ForwardContext;

ForwardContext EvalCtx() { return ForwardContext{false, nullptr}; }

TEST(LinearTest, ShapeAndBias) {
  Rng rng(1);
  nn::Linear fc(3, 4, &rng);
  ag::Var x(Tensor::Ones({2, 3}), false);
  ag::Var y = fc.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 4}));
  EXPECT_EQ(fc.NumParameters(), 3 * 4 + 4);
}

TEST(LinearTest, NoBias) {
  Rng rng(2);
  nn::Linear fc(3, 4, &rng, /*use_bias=*/false);
  EXPECT_EQ(fc.NumParameters(), 12);
  ag::Var y = fc.Forward(ag::Var(Tensor::Zeros({2, 3}), false));
  EXPECT_NEAR(MaxAll(Abs(y.value())), 0.0f, 1e-7f);
}

TEST(LinearTest, AppliesOverLastAxisOf3d) {
  Rng rng(3);
  nn::Linear fc(3, 2, &rng);
  Tensor x = Tensor::RandN({4, 5, 3}, &rng);
  ag::Var y = fc.Forward(ag::Var(x, false));
  EXPECT_EQ(y.shape(), (Shape{4, 5, 2}));
  Tensor row = Slice(Slice(x, 0, 2, 3), 1, 3, 4).Reshape({1, 3});
  ag::Var yr = fc.Forward(ag::Var(row, false));
  EXPECT_NEAR(y.value().at({2, 3, 0}), yr.value().at({0, 0}), 1e-5f);
}

TEST(LinearTest, Handles1dInput) {
  Rng rng(31);
  nn::Linear fc(3, 2, &rng);
  ag::Var y = fc.Forward(ag::Var(Tensor::Ones({3}), false));
  EXPECT_EQ(y.shape(), (Shape{2}));
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(4);
  nn::Linear fc(2, 2, &rng);
  ag::Var x(Tensor::Ones({1, 2}), false);
  ag::Var loss = ag::SumAll(ag::Square(fc.Forward(x)));
  loss.Backward();
  bool any_nonzero = false;
  for (auto& p : fc.Parameters()) {
    if (Norm(p.grad()) > 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(LayerNormTest, NormalizesLastAxis) {
  nn::LayerNorm ln(8);
  Rng rng(5);
  Tensor x = Tensor::RandN({3, 8}, &rng, 5.0f);
  Tensor y = ln.Forward(ag::Var(x, false)).value();
  for (int64_t i = 0; i < 3; ++i) {
    double mean = 0, var = 0;
    for (int64_t j = 0; j < 8; ++j) mean += y.at({i, j});
    mean /= 8;
    for (int64_t j = 0; j < 8; ++j) {
      var += (y.at({i, j}) - mean) * (y.at({i, j}) - mean);
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(FeedForwardTest, ShapePreserved) {
  Rng rng(6);
  nn::FeedForward ff(8, 16, 0.0f, &rng);
  Tensor x = Tensor::RandN({2, 5, 8}, &rng);
  ag::Var y = ff.Forward(ag::Var(x, false), EvalCtx());
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(AttentionTest, ShapePreservedAndDifferentiable) {
  Rng rng(7);
  nn::MultiHeadSelfAttention attn(8, 2, 0.0f, &rng);
  Tensor x = Tensor::RandN({2, 5, 8}, &rng);
  ag::Var xv(x, true);
  ag::Var y = attn.Forward(xv, EvalCtx());
  EXPECT_EQ(y.shape(), x.shape());
  ag::SumAll(ag::Square(y)).Backward();
  EXPECT_GT(Norm(xv.grad()), 0.0f);
}

TEST(AttentionTest, BatchItemsIndependent) {
  Rng rng(8);
  nn::MultiHeadSelfAttention attn(8, 2, 0.0f, &rng);
  Tensor x = Tensor::RandN({2, 4, 8}, &rng);
  Tensor y_joint = attn.Forward(ag::Var(x, false), EvalCtx()).value();
  Tensor x0 = Slice(x, 0, 0, 1);
  Tensor y0 = attn.Forward(ag::Var(x0, false), EvalCtx()).value();
  EXPECT_LT(MaxAbsDiff(Slice(y_joint, 0, 0, 1), y0), 1e-4f);
}

TEST(AttentionDeathTest, RequiresDivisibleHeads) {
  Rng rng(9);
  EXPECT_DEATH(nn::MultiHeadSelfAttention(10, 3, 0.0f, &rng), "divisible");
}

TEST(TransformerTest, EncoderLayerShape) {
  Rng rng(10);
  nn::TransformerEncoderLayer layer(8, 2, 16, 0.0f, &rng);
  Tensor x = Tensor::RandN({2, 6, 8}, &rng);
  EXPECT_EQ(layer.Forward(ag::Var(x, false), EvalCtx()).shape(), x.shape());
}

TEST(TransformerTest, StackedEncoder) {
  Rng rng(11);
  nn::TransformerEncoder enc(3, 8, 2, 16, 0.0f, &rng);
  Tensor x = Tensor::RandN({2, 6, 8}, &rng);
  ag::Var y = enc.Forward(ag::Var(x, false), EvalCtx());
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_GT(enc.NumParameters(), 3 * (4 * 8 * 8));
}

TEST(TransformerTest, DropoutOnlyInTraining) {
  Rng rng(12);
  nn::TransformerEncoder enc(1, 8, 2, 16, 0.5f, &rng);
  Tensor x = Tensor::RandN({1, 4, 8}, &rng);
  Tensor y1 = enc.Forward(ag::Var(x, false), EvalCtx()).value();
  Tensor y2 = enc.Forward(ag::Var(x, false), EvalCtx()).value();
  EXPECT_TRUE(AllClose(y1, y2));
  Rng d1(1), d2(2);
  Tensor t1 = enc.Forward(ag::Var(x, false), {true, &d1}).value();
  Tensor t2 = enc.Forward(ag::Var(x, false), {true, &d2}).value();
  EXPECT_GT(MaxAbsDiff(t1, t2), 1e-6f);
}

TEST(PositionalEncodingTest, AddsDistinctPositions) {
  nn::PositionalEncoding pe(32, 8);
  Tensor x = Tensor::Zeros({1, 5, 8});
  Tensor y = pe.Forward(ag::Var(x, false)).value();
  Tensor p0 = Slice(y, 1, 0, 1);
  Tensor p1 = Slice(y, 1, 1, 2);
  EXPECT_GT(MaxAbsDiff(p0, p1), 1e-3f);
  EXPECT_LE(MaxAll(Abs(y)), 1.0f + 1e-5f);
}

TEST(PositionalEncodingDeathTest, RejectsTooLongSequence) {
  nn::PositionalEncoding pe(4, 8);
  Tensor x = Tensor::Zeros({1, 5, 8});
  EXPECT_DEATH(pe.Forward(ag::Var(x, false)), "max_len");
}

TEST(ModuleTest, NamedParametersArePathQualified) {
  Rng rng(13);
  nn::TransformerEncoderLayer layer(8, 2, 16, 0.0f, &rng);
  bool found_attn_weight = false;
  for (const auto& [name, p] : layer.NamedParameters()) {
    if (name == "attn/wq/weight") found_attn_weight = true;
  }
  EXPECT_TRUE(found_attn_weight);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(14);
  nn::Linear fc(2, 2, &rng);
  ag::Var x(Tensor::Ones({1, 2}), false);
  ag::SumAll(ag::Square(fc.Forward(x))).Backward();
  fc.ZeroGrad();
  for (auto& p : fc.Parameters()) EXPECT_EQ(Norm(p.grad()), 0.0f);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(15);
  nn::TransformerEncoder enc(2, 8, 2, 16, 0.0f, &rng);
  const std::string path = ::testing::TempDir() + "/enc.ckpt";
  ASSERT_TRUE(nn::SaveCheckpoint(enc, path).ok());

  Rng rng2(999);
  nn::TransformerEncoder enc2(2, 8, 2, 16, 0.0f, &rng2);
  Tensor x = Tensor::RandN({1, 4, 8}, &rng);
  Tensor before = enc2.Forward(ag::Var(x, false), EvalCtx()).value();
  ASSERT_TRUE(nn::LoadCheckpoint(&enc2, path).ok());
  Tensor after = enc2.Forward(ag::Var(x, false), EvalCtx()).value();
  Tensor reference = enc.Forward(ag::Var(x, false), EvalCtx()).value();
  EXPECT_GT(MaxAbsDiff(before, reference), 1e-5f);
  EXPECT_LT(MaxAbsDiff(after, reference), 1e-6f);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsMismatchedArchitecture) {
  Rng rng(16);
  nn::Linear small(2, 2, &rng);
  nn::Linear big(4, 4, &rng);
  const std::string path = ::testing::TempDir() + "/mismatch.ckpt";
  ASSERT_TRUE(nn::SaveCheckpoint(small, path).ok());
  EXPECT_FALSE(nn::LoadCheckpoint(&big, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsMissingFileAndBadMagic) {
  Rng rng(17);
  nn::Linear fc(2, 2, &rng);
  EXPECT_FALSE(nn::LoadCheckpoint(&fc, "/nonexistent/path.ckpt").ok());
  const std::string path = ::testing::TempDir() + "/garbage.ckpt";
  {
    FILE* f = fopen(path.c_str(), "wb");
    fputs("not a checkpoint", f);
    fclose(f);
  }
  EXPECT_FALSE(nn::LoadCheckpoint(&fc, path).ok());
  std::remove(path.c_str());
}

TEST(GlorotTest, LimitScalesWithFans) {
  Rng rng(18);
  Tensor w = nn::GlorotUniform(100, 100, &rng);
  const float limit = std::sqrt(6.0f / 200.0f);
  EXPECT_LE(MaxAll(Abs(w)), limit + 1e-6f);
  EXPECT_GT(MaxAll(Abs(w)), limit * 0.8f);
}

}  // namespace
}  // namespace tsfm
