// Tests of the pipeline layer: stages, composition, the embed-cache key
// (normalization statistics must be part of it), fitted-bundle persistence,
// and the fitted round trip Save -> Load -> Predict staying bit-identical
// for every adapter kind, with and without the embedding cache.

#include <cstdio>
#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "data/uea_like.h"
#include "finetune/classifier.h"
#include "io/embed_cache.h"
#include "pipeline/pipeline.h"
#include "pipeline/registry.h"
#include "pipeline/session.h"
#include "pipeline/stages.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

using finetune::ClassifierConfig;
using finetune::TsfmClassifier;

data::DatasetPair Problem(uint64_t seed = 1) {
  data::UeaDatasetSpec spec{"pipe_toy", "pt", 40, 24, 8, 32, 2, 3};
  return data::GenerateUeaLike(spec, seed, data::GeneratorCaps{});
}

std::shared_ptr<models::MomentModel> TinyMoment(uint64_t seed = 11) {
  Rng rng(seed);
  auto model =
      std::make_shared<models::MomentModel>(models::MomentTestConfig(), &rng);
  models::PretrainOptions po;
  po.corpus_size = 48;
  po.series_length = 32;
  po.epochs = 1;
  EXPECT_TRUE(model->Pretrain(po).ok());
  return model;
}

std::string TempPath(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / leaf).string();
}

// Scoped embed-cache directory (fresh per test, removed afterwards).
class CacheDirGuard {
 public:
  explicit CacheDirGuard(const std::string& leaf) : dir_(TempPath(leaf)) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    io::SetEmbedCacheDir(dir_);
  }
  ~CacheDirGuard() {
    io::SetEmbedCacheDir("");
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) return false;
  return std::memcmp(a.Contiguous().data(), b.Contiguous().data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// Stages

TEST(PipelineStagesTest, NormalizeStageMatchesDatasetNormalization) {
  auto pair = Problem(3);
  pipeline::NormalizeStage stage;
  EXPECT_FALSE(stage.fitted());
  pipeline::ExecutionContext ctx;
  ASSERT_TRUE(stage.Fit(pair.train.x, pair.train.y, ctx).ok());
  EXPECT_TRUE(stage.fitted());
  EXPECT_GT(stage.FittedStateBytes(), 0);

  auto applied = stage.Apply(pair.train.x, ctx);
  ASSERT_TRUE(applied.ok());
  const data::TimeSeriesDataset reference =
      data::NormalizeWith(pair.train, data::ComputeChannelStats(pair.train));
  EXPECT_TRUE(BitIdentical(*applied, reference.x));

  // Restore constructor: a stage rebuilt from the fitted stats is fitted and
  // produces identical output.
  pipeline::NormalizeStage restored(stage.stats());
  EXPECT_TRUE(restored.fitted());
  auto reapplied = restored.Apply(pair.train.x, ctx);
  ASSERT_TRUE(reapplied.ok());
  EXPECT_TRUE(BitIdentical(*applied, *reapplied));
}

TEST(PipelineStagesTest, AdaptStageDelegatesToAdapter) {
  auto pair = Problem(4);
  core::AdapterOptions options;
  options.out_channels = 3;
  auto adapter = core::CreateAdapter(core::AdapterKind::kPca, options);
  ASSERT_NE(adapter, nullptr);
  auto stage = std::make_shared<pipeline::AdaptStage>(std::move(adapter));
  EXPECT_FALSE(stage->fitted());
  EXPECT_EQ(stage->FittedStateBytes(), 0);

  pipeline::ExecutionContext ctx;
  ASSERT_TRUE(stage->Fit(pair.train.x, pair.train.y, ctx).ok());
  EXPECT_TRUE(stage->fitted());
  EXPECT_GT(stage->FittedStateBytes(), 0);
  EXPECT_GT(stage->last_fit_seconds(), 0.0);

  auto out = stage->Apply(pair.train.x, ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->dim(2), 3);

  auto direct = stage->adapter()->Transform(pair.train.x);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(BitIdentical(*out, *direct));
}

TEST(PipelineStagesTest, EmbedAndHeadStagesComposeToLogits) {
  auto model = TinyMoment();
  auto pair = Problem(5);
  pipeline::EmbedStage embed(model);
  EXPECT_TRUE(embed.fitted());  // born fitted: pretrained weights
  EXPECT_GT(embed.FittedStateBytes(), 0);

  pipeline::ExecutionContext ctx;
  ctx.batch_size = 16;
  ctx.seed = 7;
  auto emb = embed.Apply(pair.train.x, ctx);
  ASSERT_TRUE(emb.ok());
  EXPECT_EQ(emb->dim(0), pair.train.size());
  EXPECT_EQ(emb->dim(1), model->embedding_dim());
  // Same math as the free function it wraps.
  EXPECT_TRUE(BitIdentical(
      *emb, pipeline::EmbedDataset(*model, pair.train.x, 16, 7)));

  Rng head_rng(3);
  auto head = std::make_shared<models::ClassificationHead>(
      model->embedding_dim(), pair.train.num_classes, &head_rng);
  pipeline::HeadStage head_stage(head, model->embedding_dim(),
                                 pair.train.num_classes,
                                 pipeline::HeadTrainOptions{4, 5e-2f, 1e-4f});
  EXPECT_FALSE(head_stage.fitted());
  ASSERT_TRUE(head_stage.Fit(*emb, pair.train.y, ctx).ok());
  EXPECT_TRUE(head_stage.fitted());
  EXPECT_GT(head_stage.final_loss(), 0.0);

  auto logits = head_stage.Apply(*emb, ctx);
  ASSERT_TRUE(logits.ok());
  EXPECT_EQ(logits->dim(1), pair.train.num_classes);
}

// ---------------------------------------------------------------------------
// Pipeline composition

TEST(PipelineTest, FitTransformRunsStagesInOrderAndRecordsTimings) {
  auto model = TinyMoment();
  auto pair = Problem(6);
  core::AdapterOptions options;
  options.out_channels = 3;
  Rng head_rng(3);
  auto head = std::make_shared<models::ClassificationHead>(
      model->embedding_dim(), pair.train.num_classes, &head_rng);

  pipeline::Pipeline pipe;
  pipe.Add(std::make_shared<pipeline::NormalizeStage>())
      .Add(std::make_shared<pipeline::AdaptStage>(
          core::CreateAdapter(core::AdapterKind::kPca, options)))
      .Add(std::make_shared<pipeline::EmbedStage>(model))
      .Add(std::make_shared<pipeline::HeadStage>(
          head, model->embedding_dim(), pair.train.num_classes,
          pipeline::HeadTrainOptions{3, 5e-2f, 1e-4f}));
  ASSERT_EQ(pipe.size(), 4u);
  EXPECT_FALSE(pipe.fitted());

  std::vector<pipeline::StageTiming> timings;
  pipeline::ExecutionContext ctx;
  ctx.batch_size = 16;
  ctx.timings = &timings;
  auto logits = pipe.FitTransform(pair.train.x, pair.train.y, ctx);
  ASSERT_TRUE(logits.ok()) << logits.status().ToString();
  EXPECT_TRUE(pipe.fitted());
  EXPECT_EQ(logits->shape(),
            (Shape{pair.train.size(), pair.train.num_classes}));

  // One timing entry per stage, in pipeline order.
  ASSERT_EQ(timings.size(), 4u);
  EXPECT_EQ(timings[0].stage, "normalize");
  EXPECT_EQ(timings[1].stage, "adapt");
  EXPECT_EQ(timings[2].stage, "embed");
  EXPECT_EQ(timings[3].stage, "head");
  for (const auto& t : timings) EXPECT_GE(t.seconds, 0.0);

  // Apply accumulates into the same entries (no duplicates).
  auto test_logits = pipe.Apply(pair.test.x, ctx);
  ASSERT_TRUE(test_logits.ok());
  EXPECT_EQ(timings.size(), 4u);

  // Describe reflects names, fit state and state sizes.
  const auto desc = pipe.Describe();
  ASSERT_EQ(desc.size(), 4u);
  EXPECT_EQ(desc[0].name, "normalize");
  EXPECT_EQ(desc[3].name, "head");
  for (const auto& d : desc) {
    EXPECT_TRUE(d.fitted);
    EXPECT_GT(d.state_bytes, 0);
    EXPECT_NE(d.signature.find("->"), std::string::npos);
  }
}

TEST(PipelineTest, ApplyOnUnfittedPipelineFails) {
  pipeline::Pipeline pipe;
  pipe.Add(std::make_shared<pipeline::NormalizeStage>());
  pipeline::ExecutionContext ctx;
  auto pair = Problem(7);
  auto out = pipe.Apply(pair.train.x, ctx);
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.status().ToString().find("normalize"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Embed-cache key: normalization statistics are part of the key

TEST(EmbedCacheKeyTest, StatsChangeTheKey) {
  auto model = TinyMoment();
  auto pair = Problem(8);
  const Tensor& x = pair.train.x;

  const data::ChannelStats stats_a = data::ComputeChannelStats(pair.train);
  const data::ChannelStats stats_b = data::ComputeChannelStats(pair.test);

  const std::string no_stats =
      pipeline::EmbedCacheKey(*model, x, 16, "salt", nullptr);
  const std::string with_a =
      pipeline::EmbedCacheKey(*model, x, 16, "salt", &stats_a);
  const std::string with_a2 =
      pipeline::EmbedCacheKey(*model, x, 16, "salt", &stats_a);
  const std::string with_b =
      pipeline::EmbedCacheKey(*model, x, 16, "salt", &stats_b);

  // Deterministic for equal inputs...
  EXPECT_EQ(with_a, with_a2);
  // ...but different stats (a refit with different train statistics on the
  // same raw tensor) must never alias the same cache entry.
  EXPECT_NE(with_a, no_stats);
  EXPECT_NE(with_a, with_b);
  EXPECT_NE(with_b, no_stats);

  // The other key ingredients still matter too.
  EXPECT_NE(with_a, pipeline::EmbedCacheKey(*model, x, 8, "salt", &stats_a));
  EXPECT_NE(with_a, pipeline::EmbedCacheKey(*model, x, 16, "other", &stats_a));
}

// ---------------------------------------------------------------------------
// Registry: artifact naming, bundle persistence, hot swap

TEST(RegistryTest, ArtifactNaming) {
  EXPECT_EQ(pipeline::AdapterArtifactPath("p"), "p.adapter");
  EXPECT_EQ(pipeline::HeadArtifactPath("p"), "p.head");
  EXPECT_EQ(pipeline::StatsArtifactPath("p"), "p.stats");
}

TEST(RegistryTest, InstallGetRemoveAndHotSwap) {
  auto model = TinyMoment();
  auto pair = Problem(9);
  data::ChannelStats stats = data::ComputeChannelStats(pair.train);
  Rng head_rng(1);
  auto head = std::make_shared<models::ClassificationHead>(
      model->embedding_dim(), pair.train.num_classes, &head_rng);

  pipeline::SessionOptions options;
  auto session_a = pipeline::InferenceSession::Create(
      model, nullptr, head, stats, pair.train.num_classes, options);
  ASSERT_TRUE(session_a.ok()) << session_a.status().ToString();
  auto session_b = pipeline::InferenceSession::Create(
      model, nullptr, head, stats, pair.train.num_classes, options);
  ASSERT_TRUE(session_b.ok());

  pipeline::Registry registry;
  EXPECT_EQ(registry.Get("clf"), nullptr);
  EXPECT_FALSE(registry.Install("clf", nullptr).ok());
  EXPECT_FALSE(registry.Install("", *session_a).ok());
  ASSERT_TRUE(registry.Install("clf", *session_a).ok());
  EXPECT_EQ(registry.Get("clf"), *session_a);

  // Hot swap: same name, new session; old handle keeps working.
  auto held = registry.Get("clf");
  ASSERT_TRUE(registry.Install("clf", *session_b).ok());
  EXPECT_EQ(registry.Get("clf"), *session_b);
  auto preds = held->PredictBatch(pair.test.x);  // swapped-out session lives
  EXPECT_TRUE(preds.ok());

  EXPECT_EQ(registry.Names(), std::vector<std::string>{"clf"});
  EXPECT_TRUE(registry.Remove("clf"));
  EXPECT_FALSE(registry.Remove("clf"));
  EXPECT_EQ(registry.Get("clf"), nullptr);
}

TEST(RegistryTest, LoadAndInstallServesSavedClassifier) {
  ClassifierConfig config;
  config.model_kind = models::ModelKind::kVit;
  config.model_config = models::VitTestConfig();
  config.pretrain.corpus_size = 48;
  config.pretrain.series_length = 32;
  config.pretrain.epochs = 1;
  config.finetune.head_epochs = 6;
  config.adapter_options.out_channels = 3;
  config.checkpoint_path = TempPath("pipe_registry_ckpt.tsfm");
  std::filesystem::remove(config.checkpoint_path);

  auto clf = TsfmClassifier::Create(config);
  ASSERT_TRUE(clf.ok()) << clf.status().ToString();
  auto pair = Problem(10);
  ASSERT_TRUE(clf->Fit(pair.train, &pair.test).ok());
  const std::string prefix = TempPath("pipe_registry_bundle");
  ASSERT_TRUE(clf->Save(prefix).ok());

  auto reference = clf->Predict(pair.test.x);
  ASSERT_TRUE(reference.ok());

  // A registry can reconstruct the serving session from artifacts + model.
  pipeline::Registry registry;
  pipeline::SessionOptions options;
  options.normalize = config.finetune.normalize;
  options.batch_size = config.finetune.batch_size;
  options.seed = config.finetune.seed;
  std::shared_ptr<const models::FoundationModel> model(
      &clf->model(), [](const models::FoundationModel*) {});
  auto session = registry.LoadAndInstall("served", prefix, model,
                                         config.adapter,
                                         pair.train.num_classes, options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(registry.Get("served"), *session);

  auto served = (*session)->PredictBatch(pair.test.x);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(*served, *reference);

  // Wrong adapter expectation is rejected.
  auto wrong = registry.LoadAndInstall("bad", prefix, model,
                                       core::AdapterKind::kVar,
                                       pair.train.num_classes, options);
  EXPECT_FALSE(wrong.ok());

  std::filesystem::remove(config.checkpoint_path);
  for (const char* suffix : {".adapter", ".head", ".stats"}) {
    std::filesystem::remove(prefix + suffix);
  }
}

// ---------------------------------------------------------------------------
// Fitted round trip: Save -> Load -> Predict bit-identical to the pre-save
// classifier, for every adapter kind, with and without the embedding cache.

void RunRoundTrip(std::optional<core::AdapterKind> kind, bool with_cache) {
  SCOPED_TRACE(testing::Message()
               << "adapter="
               << (kind.has_value() ? core::AdapterKindName(*kind) : "none")
               << " cache=" << with_cache);
  ClassifierConfig config;
  config.model_kind = models::ModelKind::kVit;
  config.model_config = models::VitTestConfig();
  config.pretrain.corpus_size = 48;
  config.pretrain.series_length = 32;
  config.pretrain.epochs = 1;
  config.finetune.head_epochs = 5;
  config.finetune.joint_epochs = 2;
  config.adapter = kind;
  config.adapter_options.out_channels = 3;
  // Shared checkpoint: pretrain once, reload for every variant.
  config.checkpoint_path = TempPath("pipe_roundtrip_ckpt.tsfm");

  std::unique_ptr<CacheDirGuard> cache;
  if (with_cache) cache = std::make_unique<CacheDirGuard>("pipe_roundtrip");

  auto clf = TsfmClassifier::Create(config);
  ASSERT_TRUE(clf.ok()) << clf.status().ToString();
  auto pair = Problem(11);
  ASSERT_TRUE(clf->Fit(pair.train, &pair.test).ok());

  auto before = clf->Predict(pair.test.x);
  ASSERT_TRUE(before.ok());
  auto session_before = clf->session();
  ASSERT_NE(session_before, nullptr);
  auto logits_before = session_before->Logits(pair.test.x);
  ASSERT_TRUE(logits_before.ok());

  const std::string prefix =
      TempPath(std::string("pipe_roundtrip_") +
               (kind.has_value() ? core::AdapterKindName(*kind) : "none") +
               (with_cache ? "_c" : "_p"));
  ASSERT_TRUE(clf->Save(prefix).ok());

  auto reloaded = TsfmClassifier::Create(config);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_TRUE(reloaded->Load(prefix, pair.train.num_classes).ok());

  auto after = reloaded->Predict(pair.test.x);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);

  auto logits_after = reloaded->session()->Logits(pair.test.x);
  ASSERT_TRUE(logits_after.ok());
  EXPECT_TRUE(BitIdentical(*logits_before, *logits_after));

  for (const char* suffix : {".adapter", ".head", ".stats"}) {
    std::filesystem::remove(prefix + suffix);
  }
}

TEST(PipelineRoundTripTest, EveryAdapterKindWithoutCache) {
  for (core::AdapterKind kind : core::AllAdapterKinds()) {
    RunRoundTrip(kind, /*with_cache=*/false);
  }
  RunRoundTrip(std::nullopt, /*with_cache=*/false);
}

TEST(PipelineRoundTripTest, EveryAdapterKindWithCache) {
  for (core::AdapterKind kind : core::AllAdapterKinds()) {
    RunRoundTrip(kind, /*with_cache=*/true);
  }
  RunRoundTrip(std::nullopt, /*with_cache=*/true);
}

}  // namespace
}  // namespace tsfm
