// Property-based tests: algebraic identities and invariants checked across
// parameterized sweeps of shapes, sizes and operators.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "data/uea_like.h"
#include "linalg/linalg.h"
#include "models/moment.h"
#include "models/pretrained.h"
#include "models/vit.h"
#include "tensor/ops.h"
#include "tests/test_util.h"

namespace tsfm {
namespace {

// ----------------------- Tensor algebra properties -------------------------

class BroadcastShapeSuite
    : public ::testing::TestWithParam<std::tuple<Shape, Shape>> {};

TEST_P(BroadcastShapeSuite, BinaryOpsAgreeWithManualBroadcast) {
  const auto& [sa, sb] = GetParam();
  Rng rng(1);
  Tensor a = Tensor::RandN(sa, &rng);
  Tensor b = Tensor::RandN(sb, &rng);
  Tensor sum = Add(a, b);
  const Shape expect = BroadcastShapes(sa, sb);
  ASSERT_EQ(sum.shape(), expect);
  // a + b == b + a (commutativity through the broadcast machinery).
  EXPECT_TRUE(AllClose(sum, Add(b, a)));
  // a * b == b * a.
  EXPECT_TRUE(AllClose(Mul(a, b), Mul(b, a)));
  // (a - b) + b == broadcast(a).
  Tensor roundtrip = Add(Sub(a, b), b);
  Tensor a_broadcast = Add(a, Tensor::Zeros(expect));
  EXPECT_LT(MaxAbsDiff(roundtrip, a_broadcast), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastShapeSuite,
    ::testing::Values(std::make_tuple(Shape{4, 3}, Shape{4, 3}),
                      std::make_tuple(Shape{4, 3}, Shape{3}),
                      std::make_tuple(Shape{2, 1, 5}, Shape{3, 1}),
                      std::make_tuple(Shape{6}, Shape{2, 1, 6}),
                      std::make_tuple(Shape{1}, Shape{2, 3, 4}),
                      std::make_tuple(Shape{5, 1, 2}, Shape{5, 4, 2})));

class MatMulShapeSuite
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeSuite, TransposeIdentity) {
  const auto& [m, k, n] = GetParam();
  Rng rng(2);
  Tensor a = Tensor::RandN({m, k}, &rng);
  Tensor b = Tensor::RandN({k, n}, &rng);
  // (A B)^T == B^T A^T
  Tensor lhs = TransposeLast2(MatMul(a, b));
  Tensor rhs = MatMul(TransposeLast2(b), TransposeLast2(a));
  EXPECT_LT(MaxAbsDiff(lhs, rhs), 1e-4f);
}

TEST_P(MatMulShapeSuite, IdentityIsNeutral) {
  const auto& [m, k, n] = GetParam();
  (void)n;
  Rng rng(3);
  Tensor a = Tensor::RandN({m, k}, &rng);
  EXPECT_LT(MaxAbsDiff(MatMul(a, Tensor::Eye(k)), a), 1e-5f);
  EXPECT_LT(MaxAbsDiff(MatMul(Tensor::Eye(m), a), a), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulShapeSuite,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(3, 5, 2),
                                           std::make_tuple(8, 8, 8),
                                           std::make_tuple(2, 17, 4)));

TEST(SoftmaxPropertyTest, InvariantUnderConstantShift) {
  Rng rng(4);
  Tensor x = Tensor::RandN({5, 9}, &rng, 2.0f);
  Tensor shifted = AddScalar(x, 123.0f);
  EXPECT_LT(MaxAbsDiff(Softmax(x), Softmax(shifted)), 1e-5f);
}

TEST(SoftmaxPropertyTest, MonotoneInLogits) {
  // Raising one logit raises its probability and lowers the others.
  Tensor x(Shape{1, 3}, {0.0f, 0.0f, 0.0f});
  Tensor y = x.Clone();
  y.at({0, 1}) = 1.0f;
  Tensor px = Softmax(x);
  Tensor py = Softmax(y);
  EXPECT_GT(py.at({0, 1}), px.at({0, 1}));
  EXPECT_LT(py.at({0, 0}), px.at({0, 0}));
  EXPECT_LT(py.at({0, 2}), px.at({0, 2}));
}

class ReductionAxisSuite : public ::testing::TestWithParam<int64_t> {};

TEST_P(ReductionAxisSuite, SumOverAxisMatchesTotal) {
  const int64_t axis = GetParam();
  Rng rng(5);
  Tensor x = Tensor::RandN({3, 4, 5}, &rng);
  // Summing the axis-sums equals the global sum.
  EXPECT_NEAR(SumAll(Sum(x, axis)), SumAll(x), 1e-3f);
  // keepdim and non-keepdim agree on data.
  Tensor kd = Sum(x, axis, true);
  Tensor nk = Sum(x, axis, false);
  EXPECT_LT(MaxAbsDiff(kd.Reshape(nk.shape()), nk), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Axes, ReductionAxisSuite, ::testing::Values(0, 1, 2));

// --------------------------- Linalg properties -----------------------------

class EigenSizeSuite : public ::testing::TestWithParam<int64_t> {};

TEST_P(EigenSizeSuite, ReconstructsMatrix) {
  const int64_t d = GetParam();
  Rng rng(6 + static_cast<uint64_t>(d));
  Tensor b = Tensor::RandN({d, d}, &rng);
  Tensor a = Scale(MatMul(TransposeLast2(b), b), 1.0f / d);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  // A == V diag(lambda) V^T
  Tensor vl = eig->eigenvectors.Clone();
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      vl.at({i, j}) *= eig->eigenvalues[j];
    }
  }
  Tensor recon = MatMul(vl, TransposeLast2(eig->eigenvectors));
  EXPECT_LT(RelativeError(a, recon), 1e-3f) << "d=" << d;
  // Trace == sum of eigenvalues.
  float trace = 0.0f, eigsum = 0.0f;
  for (int64_t i = 0; i < d; ++i) {
    trace += a.at({i, i});
    eigsum += eig->eigenvalues[i];
  }
  EXPECT_NEAR(trace, eigsum, 1e-2f * std::max(1.0f, std::fabs(trace)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizeSuite,
                         ::testing::Values(2, 3, 7, 16, 33));

class SvdRankSuite : public ::testing::TestWithParam<int64_t> {};

TEST_P(SvdRankSuite, EnergyCapturedIsMonotoneInK) {
  Rng rng(7);
  Tensor x = Tensor::RandN({40, 12}, &rng);
  const int64_t k = GetParam();
  auto svd_k = TruncatedSvd(x, k);
  auto svd_k1 = TruncatedSvd(x, k + 1);
  ASSERT_TRUE(svd_k.ok());
  ASSERT_TRUE(svd_k1.ok());
  auto energy = [](const Tensor& s) {
    double total = 0;
    for (int64_t i = 0; i < s.numel(); ++i) {
      total += static_cast<double>(s[i]) * s[i];
    }
    return total;
  };
  EXPECT_GE(energy(svd_k1->s), energy(svd_k->s) - 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SvdRankSuite, ::testing::Values(1, 3, 6, 10));

// --------------------------- Autograd properties ---------------------------

TEST(AutogradPropertyTest, LinearityOfGradients) {
  // grad of (a*f + b*g) == a*grad(f) + b*grad(g).
  Rng rng(8);
  Tensor x0 = Tensor::RandN({2, 3}, &rng);
  auto grad_of = [&](float ca, float cb) {
    ag::Var x(x0.Clone(), true);
    ag::Var f = ag::SumAll(ag::Square(x));
    ag::Var g = ag::SumAll(ag::Tanh(x));
    ag::Var combined = ag::Add(ag::Scale(f, ca), ag::Scale(g, cb));
    combined.Backward();
    return x.grad();
  };
  Tensor g_combined = grad_of(2.0f, -3.0f);
  Tensor g_f = grad_of(1.0f, 0.0f);
  Tensor g_g = grad_of(0.0f, 1.0f);
  Tensor expect = Add(Scale(g_f, 2.0f), Scale(g_g, -3.0f));
  EXPECT_LT(MaxAbsDiff(g_combined, expect), 1e-4f);
}

TEST(AutogradPropertyTest, ChainRuleThroughComposition) {
  // d/dx sum(softmax(Wx)) == 0 because softmax rows sum to 1 exactly.
  Rng rng(9);
  Tensor w = Tensor::RandN({4, 6}, &rng);
  ag::Var x(Tensor::RandN({2, 4}, &rng), true);
  ag::Var y = ag::SumAll(ag::Softmax(ag::MatMul(x, ag::Constant(w))));
  y.Backward();
  EXPECT_LT(Norm(x.grad()), 1e-4f);
  EXPECT_NEAR(y.value()[0], 2.0f, 1e-4f);  // 2 rows, each sums to 1
}

TEST(AutogradPropertyTest, StopGradZeroesUpstream) {
  Rng rng(10);
  ag::Var x(Tensor::RandN({3}, &rng), true);
  ag::Var y = ag::SumAll(ag::Mul(x.Detach(), x.Detach()));
  y.Backward();
  EXPECT_EQ(Norm(x.grad()), 0.0f);
}

// ----------------------- Model-family property sweep -----------------------

class ModelFamilySuite : public ::testing::TestWithParam<models::ModelKind> {};

std::shared_ptr<models::FoundationModel> MakeModel(models::ModelKind kind,
                                                   uint64_t seed) {
  Rng rng(seed);
  if (kind == models::ModelKind::kMoment) {
    return std::make_shared<models::MomentModel>(models::MomentTestConfig(),
                                                 &rng);
  }
  return std::make_shared<models::VitModel>(models::VitTestConfig(), &rng);
}

TEST_P(ModelFamilySuite, EmbeddingIndependentOfBatchComposition) {
  auto model = MakeModel(GetParam(), 11);
  Rng rng(12);
  Tensor x = Tensor::RandN({4, 32, 3}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  Tensor joint = model->EncodeChannels(ag::Constant(x), ctx).value();
  Tensor solo = model
                    ->EncodeChannels(ag::Constant(Slice(x, 0, 2, 3)), ctx)
                    .value();
  EXPECT_LT(MaxAbsDiff(Slice(joint, 0, 2, 3), solo), 1e-4f);
}

TEST_P(ModelFamilySuite, EmbeddingScalesWithInput) {
  // Sanity: embeddings are not constant in the input.
  auto model = MakeModel(GetParam(), 13);
  Rng rng(14);
  Tensor a = Tensor::RandN({1, 32, 2}, &rng);
  Tensor b = Tensor::RandN({1, 32, 2}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  Tensor ea = model->EncodeChannels(ag::Constant(a), ctx).value();
  Tensor eb = model->EncodeChannels(ag::Constant(b), ctx).value();
  EXPECT_GT(MaxAbsDiff(ea, eb), 1e-4f);
}

TEST_P(ModelFamilySuite, PretrainingChangesWeightsDeterministically) {
  auto m1 = MakeModel(GetParam(), 15);
  auto m2 = MakeModel(GetParam(), 15);
  models::PretrainOptions o;
  o.corpus_size = 24;
  o.series_length = 32;
  o.epochs = 1;
  auto l1 = m1->Pretrain(o);
  auto l2 = m2->Pretrain(o);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_DOUBLE_EQ(*l1, *l2);  // bit-for-bit deterministic pretraining
  // Same weights afterwards.
  auto p1 = m1->NamedParameters();
  auto p2 = m2->NamedParameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(AllClose(p1[i].second.value(), p2[i].second.value(), 0.0f))
        << p1[i].first;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ModelFamilySuite,
                         ::testing::Values(models::ModelKind::kMoment,
                                           models::ModelKind::kVit),
                         [](const auto& info) {
                           return models::ModelKindName(info.param);
                         });

// ------------------------ Generator property sweep -------------------------

class GeneratorDatasetSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorDatasetSuite, ShapesClassesAndDeterminism) {
  auto spec = data::FindUeaSpec(GetParam());
  ASSERT_TRUE(spec.ok());
  data::GeneratorCaps caps{40, 24, 32, 48};
  auto a = data::GenerateUeaLike(*spec, 5, caps);
  auto b = data::GenerateUeaLike(*spec, 5, caps);
  EXPECT_TRUE(data::Validate(a.train).ok());
  EXPECT_TRUE(data::Validate(a.test).ok());
  EXPECT_TRUE(AllClose(a.train.x, b.train.x));
  EXPECT_EQ(a.train.num_classes, spec->classes);
  EXPECT_LE(a.train.channels(), std::min<int64_t>(spec->channels, 48));
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, GeneratorDatasetSuite,
                         ::testing::Values("Duck", "Face", "Finger", "Hand",
                                           "Heart", "Insect", "Vowels",
                                           "Motor", "NATOPS", "PEMS",
                                           "Phoneme", "SpokeA"));

}  // namespace
}  // namespace tsfm
