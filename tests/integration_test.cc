// End-to-end integration tests exercising the full public pipeline the way
// the examples and benchmarks do: generate data -> pretrain -> fit adapters
// -> fine-tune -> evaluate -> statistics.

#include <gtest/gtest.h>

#include "core/adapter.h"
#include "data/uea_like.h"
#include "experiments/runner.h"
#include "finetune/finetune.h"
#include "models/pretrained.h"
#include "stats/stats.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

TEST(IntegrationTest, AdapterComparisonPipeline) {
  // A miniature version of the paper's Table 2 protocol on one dataset:
  // compare head-only vs PCA vs VAR over 2 seeds, then t-test the results.
  data::UeaDatasetSpec spec{"mini", "mini", 40, 24, 10, 32, 2, 4};
  Rng init_rng(5);
  auto model =
      std::make_shared<models::VitModel>(models::VitTestConfig(), &init_rng);
  models::PretrainOptions po;
  po.corpus_size = 48;
  po.series_length = 32;
  po.epochs = 2;
  ASSERT_TRUE(model->Pretrain(po).ok());

  std::vector<std::vector<double>> per_method(3);
  for (uint64_t seed = 0; seed < 2; ++seed) {
    auto pair = data::GenerateUeaLike(spec, seed, data::GeneratorCaps{});
    finetune::FineTuneOptions options;
    options.head_epochs = 30;
    options.batch_size = 16;
    options.seed = seed;

    // Method 0: head only.
    options.strategy = finetune::Strategy::kHeadOnly;
    auto r0 =
        finetune::FineTune(model.get(), nullptr, pair.train, pair.test, options);
    ASSERT_TRUE(r0.ok());
    per_method[0].push_back(r0->test_accuracy);

    // Methods 1 and 2: PCA and VAR adapters at D' = 4.
    options.strategy = finetune::Strategy::kAdapterPlusHead;
    core::AdapterOptions ao;
    ao.out_channels = 4;
    int m = 1;
    for (core::AdapterKind kind :
         {core::AdapterKind::kPca, core::AdapterKind::kVar}) {
      auto adapter = core::CreateAdapter(kind, ao);
      auto r = finetune::FineTune(model.get(), adapter.get(), pair.train,
                                  pair.test, options);
      ASSERT_TRUE(r.ok());
      per_method[static_cast<size_t>(m++)].push_back(r->test_accuracy);
    }
  }

  // All methods should beat chance on this easy problem.
  for (const auto& accs : per_method) {
    EXPECT_GT(stats::Mean(accs), 0.55);
  }
  // The pairwise p-value matrix is well-formed.
  auto pvals = stats::PairwisePValueMatrix(per_method);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(pvals[i][i], 1.0);
  }
  // Ranks aggregate sensibly.
  std::vector<std::vector<double>> per_dataset{
      {stats::Mean(per_method[0]), stats::Mean(per_method[1]),
       stats::Mean(per_method[2])}};
  auto ranks = stats::AverageRanks(per_dataset);
  double sum = 0;
  for (double r : ranks) sum += r;
  EXPECT_DOUBLE_EQ(sum, 6.0);  // 1 + 2 + 3
}

TEST(IntegrationTest, RunnerGridForOneDataset) {
  // Drives the shared experiment runner exactly like bench_table2 does,
  // for one tiny dataset and two adapters.
  experiments::ExperimentConfig config;
  config.fast = true;
  config.num_seeds = 1;
  config.caps = data::GeneratorCaps{24, 16, 29, 12};
  config.checkpoint_dir = ::testing::TempDir();
  experiments::ExperimentRunner runner(config);

  std::vector<std::string> cells;
  for (auto adapter : {std::optional<core::AdapterKind>(std::nullopt),
                       std::optional<core::AdapterKind>(core::AdapterKind::kPca),
                       std::optional<core::AdapterKind>(
                           core::AdapterKind::kLcomb)}) {
    experiments::RunSpec spec;
    spec.dataset = "JapaneseVowels";
    spec.model_kind = models::ModelKind::kMoment;
    spec.adapter = adapter;
    spec.strategy = adapter.has_value()
                        ? finetune::Strategy::kAdapterPlusHead
                        : finetune::Strategy::kHeadOnly;
    spec.adapter_options.out_channels = 5;
    auto record = runner.Run(spec);
    ASSERT_TRUE(record.ok()) << record.status().ToString();
    ASSERT_TRUE(record->completed()) << record->method;
    cells.push_back(record->CellString());
  }
  EXPECT_EQ(cells.size(), 3u);
}

TEST(IntegrationTest, CheckpointReuseGivesIdenticalAccuracy) {
  // Two runners sharing a checkpoint dir produce identical results — the
  // "published checkpoint" behaves like a fixed artifact.
  experiments::ExperimentConfig config;
  config.fast = true;
  config.num_seeds = 1;
  config.caps = data::GeneratorCaps{16, 12, 29, 10};
  config.checkpoint_dir = ::testing::TempDir() + "/ckpt_reuse";
  auto run_once = [&]() {
    experiments::ExperimentRunner runner(config);
    experiments::RunSpec spec;
    spec.dataset = "JapaneseVowels";
    spec.model_kind = models::ModelKind::kVit;
    spec.adapter = core::AdapterKind::kSvd;
    spec.adapter_options.out_channels = 4;
    auto record = runner.Run(spec);
    EXPECT_TRUE(record.ok());
    return record->accuracy();
  };
  const double first = run_once();
  const double second = run_once();
  EXPECT_DOUBLE_EQ(first, second);
}

}  // namespace
}  // namespace tsfm
