// Tests for run reports, the budget monitor, and the metrics-timeline
// sampler (src/obs/run_report, src/obs/budget): JSON manifest round-trip,
// budget verdict math and COM-before-TO ordering, the live monitor's
// trip/latch/rearm behaviour, and the sampler's JSONL output.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/rng.h"
#include "obs/budget.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

obs::RunReport SampleReport() {
  obs::RunReport report;
  report.command = "classify";
  report.model = "MOMENT";
  report.adapter = "PCA";
  report.strategy = "adapter_plus_head";
  report.dprime = 5;
  report.options = {{"head_epochs", "60"},
                    {"head_lr", "0.05"},
                    {"normalize", "true"},
                    {"dataset", "\"NATOPS\""}};
  obs::RunReportEpoch e;
  e.epoch = 0;
  e.phase = "head";
  e.loss = 1.5;
  e.accuracy = 0.25;
  e.seconds = 0.125;
  e.pool_live_bytes = 4096;
  report.epochs.push_back(e);
  report.mem_baseline_bytes = 1024;
  report.mem_peak_bytes = 8192;
  report.mem_acquires = 100;
  report.mem_pool_hits = 99;
  report.mem_heap_allocs = 1;
  report.train_accuracy = 0.9;
  report.test_accuracy = 0.8;
  report.final_loss = 0.2;
  report.adapter_fit_seconds = 0.01;
  report.train_seconds = 1.5;
  report.total_seconds = 2.0;
  report.has_estimate = true;
  report.estimate_model = "MOMENT";
  report.estimate_regime = "embed_once_head_only";
  report.estimate_verdict = "OK";
  report.estimate_channels = 5;
  report.estimate_values = {{"peak_memory_bytes", 2e9},
                            {"total_seconds", 120.0}};
  report.budget = obs::JudgeBudget(obs::BudgetLimits{}, 9216, 2.0);
  return report;
}

TEST(RunReport, JsonCarriesEverySection) {
  const std::string json = RenderRunReportJson(SampleReport());
  for (const char* key :
       {"\"schema_version\"", "\"run\"", "\"options\"", "\"epochs\"",
        "\"measured_memory\"", "\"result\"", "\"estimate\"", "\"budget\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"command\":\"classify\""), std::string::npos);
  EXPECT_NE(json.find("\"dprime\":5"), std::string::npos);
  // Pre-rendered option literals are emitted verbatim (typed, unquoted
  // numbers and booleans, quoted strings).
  EXPECT_NE(json.find("\"head_epochs\":60"), std::string::npos);
  EXPECT_NE(json.find("\"normalize\":true"), std::string::npos);
  EXPECT_NE(json.find("\"dataset\":\"NATOPS\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"head\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"fits\""), std::string::npos);
  // Balanced delimiters (the writer builds JSON by hand).
  int64_t braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(RunReport, NoEstimateRendersNull) {
  obs::RunReport report = SampleReport();
  report.has_estimate = false;
  const std::string json = RenderRunReportJson(report);
  EXPECT_NE(json.find("\"estimate\":null"), std::string::npos);
}

TEST(RunReport, WriteRunReportAllocatesFreshFiles) {
  const std::string dir = ::testing::TempDir() + "/run_report_test_dir";
  const auto first = obs::WriteRunReport(SampleReport(), dir);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const auto second = obs::WriteRunReport(SampleReport(), dir);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(*first, *second);

  std::ifstream is(*first);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_NE(buf.str().find("\"schema_version\":1"), std::string::npos);
  std::remove(first->c_str());
  std::remove(second->c_str());
}

TEST(BudgetVerdict, FitsWhenUnderOrUnbounded) {
  // No limits: everything fits with full headroom.
  obs::BudgetVerdict v = obs::JudgeBudget(obs::BudgetLimits{}, 1e12, 1e6);
  EXPECT_TRUE(v.fits());
  EXPECT_DOUBLE_EQ(v.mem_headroom_pct, 100.0);
  EXPECT_DOUBLE_EQ(v.time_headroom_pct, 100.0);

  obs::BudgetLimits limits;
  limits.mem_bytes = 1000;
  limits.time_seconds = 100;
  v = obs::JudgeBudget(limits, 250, 50);
  EXPECT_TRUE(v.fits());
  EXPECT_DOUBLE_EQ(v.mem_headroom_pct, 75.0);
  EXPECT_DOUBLE_EQ(v.time_headroom_pct, 50.0);
  EXPECT_STREQ(obs::BudgetVerdictName(v.kind), "fits");
}

TEST(BudgetVerdict, OverBudgetAxesAndComBeforeTo) {
  obs::BudgetLimits limits;
  limits.mem_bytes = 1000;
  limits.time_seconds = 100;

  obs::BudgetVerdict v = obs::JudgeBudget(limits, 2000, 50);
  EXPECT_EQ(v.kind, obs::BudgetVerdict::Kind::kExceedsMemory);
  EXPECT_DOUBLE_EQ(v.mem_headroom_pct, -100.0);
  EXPECT_STREQ(obs::BudgetVerdictName(v.kind), "exceeds_memory");

  v = obs::JudgeBudget(limits, 500, 150);
  EXPECT_EQ(v.kind, obs::BudgetVerdict::Kind::kExceedsTime);
  EXPECT_DOUBLE_EQ(v.time_headroom_pct, -50.0);
  EXPECT_STREQ(obs::BudgetVerdictName(v.kind), "exceeds_time");

  // Both axes blown: memory wins, the cost model's COM-before-TO order.
  v = obs::JudgeBudget(limits, 2000, 150);
  EXPECT_EQ(v.kind, obs::BudgetVerdict::Kind::kExceedsMemory);
}

TEST(BudgetMonitor, UnconfiguredCheckIsOk) {
  obs::ClearBudget();
  EXPECT_FALSE(obs::BudgetConfigured());
  EXPECT_TRUE(obs::CheckBudget("run_report_test").ok());
  EXPECT_FALSE(obs::BudgetTripped());
}

TEST(BudgetMonitor, MemoryCapTripsLatchesAndRearms) {
  obs::BudgetLimits limits;
  limits.mem_bytes = 1;  // any allocation blows this
  obs::SetBudget(limits);
  ASSERT_TRUE(obs::BudgetConfigured());
  EXPECT_DOUBLE_EQ(obs::CurrentBudget().mem_bytes, 1.0);

  // Allocate through the pool so pool.peak_live_bytes rises above 1 byte.
  Rng rng(5);
  Tensor t = Tensor::RandN({64, 64}, &rng);
  (void)SumAll(t);

  const Status first = obs::CheckBudget("run_report_test.loop");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(first.message().find("memory budget exceeded"),
            std::string::npos);
  EXPECT_NE(first.message().find("run_report_test.loop"), std::string::npos);
  EXPECT_TRUE(obs::BudgetTripped());

  // Latched: later polls from any loop return the same diagnosis.
  const Status second = obs::CheckBudget("somewhere.else");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.message(), first.message());

  // A new run window rearms the monitor but keeps the (still tiny) limits.
  obs::BeginBudgetRun();
  EXPECT_FALSE(obs::BudgetTripped());

  obs::ClearBudget();
  EXPECT_TRUE(obs::CheckBudget("run_report_test").ok());
}

TEST(BudgetMonitor, TimeCapMentionsElapsedAndSpans) {
  // Record some spans so the diagnosis can name the hottest ones.
  obs::EnableTracing();
  obs::ClearTrace();
  {
    TSFM_TRACE_SPAN("run_report_test.hot_span");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  obs::BudgetLimits limits;
  limits.time_seconds = 1e-9;
  obs::SetBudget(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const Status s = obs::CheckBudget("run_report_test.timer");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("time budget exceeded"), std::string::npos);
  EXPECT_NE(s.message().find("run_report_test.hot_span"), std::string::npos);
  obs::ClearBudget();
  obs::DisableTracing();
  obs::ClearTrace();
}

TEST(MetricsTimeline, SamplerWritesJsonlLines) {
  const std::string path = ::testing::TempDir() + "/run_report_timeline.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::StartMetricsTimeline(path, /*interval_ms=*/20).ok());
  // A second sampler must be refused while the first runs.
  EXPECT_FALSE(obs::StartMetricsTimeline(path, 20).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  obs::StopMetricsTimeline();

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.rfind("{\"t_ms\":", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  // At least the t=0 baseline and the final flush sample.
  EXPECT_GE(lines, 2);
  std::remove(path.c_str());

  // Stopped: the sampler can be started again.
  ASSERT_TRUE(obs::StartMetricsTimeline(path, 20).ok());
  obs::StopMetricsTimeline();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tsfm
