#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/linalg.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

Tensor RandomSymmetricPsd(int64_t d, Rng* rng) {
  Tensor a = Tensor::RandN({d, d}, rng);
  return Scale(MatMul(TransposeLast2(a), a), 1.0f / static_cast<float>(d));
}

TEST(ColumnStatsTest, MeansAndStds) {
  Tensor x(Shape{4, 2}, {1, 10, 2, 10, 3, 10, 4, 10});
  Tensor mu = ColumnMeans(x);
  EXPECT_NEAR(mu[0], 2.5f, 1e-6f);
  EXPECT_NEAR(mu[1], 10.0f, 1e-6f);
  Tensor sd = ColumnStds(x);
  EXPECT_NEAR(sd[0], std::sqrt(1.25f), 1e-5f);
  EXPECT_GE(sd[1], 1e-8f);  // clamped, not zero
}

TEST(CovarianceTest, CenteredKnownValue) {
  // Two perfectly correlated columns.
  Tensor x(Shape{3, 2}, {1, 2, 2, 4, 3, 6});
  Tensor cov = Covariance(x);
  const float var0 = 2.0f / 3.0f;
  EXPECT_NEAR(cov.at({0, 0}), var0, 1e-5f);
  EXPECT_NEAR(cov.at({0, 1}), 2 * var0, 1e-5f);
  EXPECT_NEAR(cov.at({1, 1}), 4 * var0, 1e-5f);
  EXPECT_NEAR(cov.at({0, 1}), cov.at({1, 0}), 1e-6f);
}

TEST(CovarianceTest, UncenteredIsSecondMoment) {
  Tensor x(Shape{2, 1}, {1, 3});
  Tensor m = Covariance(x, /*center=*/false);
  EXPECT_NEAR(m.at({0, 0}), 5.0f, 1e-5f);  // (1 + 9) / 2
}

TEST(SymmetricEigenTest, DiagonalMatrix) {
  Tensor a(Shape{3, 3});
  a.at({0, 0}) = 1.0f;
  a.at({1, 1}) = 5.0f;
  a.at({2, 2}) = 3.0f;
  auto r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->eigenvalues[0], 5.0f, 1e-5f);
  EXPECT_NEAR(r->eigenvalues[1], 3.0f, 1e-5f);
  EXPECT_NEAR(r->eigenvalues[2], 1.0f, 1e-5f);
  // Leading eigenvector is e_1.
  EXPECT_NEAR(std::fabs(r->eigenvectors.at({1, 0})), 1.0f, 1e-5f);
}

TEST(SymmetricEigenTest, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Tensor a(Shape{2, 2}, {2, 1, 1, 2});
  auto r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->eigenvalues[0], 3.0f, 1e-5f);
  EXPECT_NEAR(r->eigenvalues[1], 1.0f, 1e-5f);
}

TEST(SymmetricEigenTest, EigenEquationHolds) {
  Rng rng(11);
  Tensor a = RandomSymmetricPsd(12, &rng);
  auto r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  Tensor av = MatMul(a, r->eigenvectors);
  // A V == V diag(lambda)
  for (int64_t j = 0; j < 12; ++j) {
    for (int64_t i = 0; i < 12; ++i) {
      EXPECT_NEAR(av.at({i, j}),
                  r->eigenvalues[j] * r->eigenvectors.at({i, j}), 2e-4f);
    }
  }
}

TEST(SymmetricEigenTest, EigenvectorsOrthonormal) {
  Rng rng(13);
  Tensor a = RandomSymmetricPsd(10, &rng);
  auto r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  Tensor vtv = MatMul(TransposeLast2(r->eigenvectors), r->eigenvectors);
  EXPECT_LT(MaxAbsDiff(vtv, Tensor::Eye(10)), 1e-4f);
}

TEST(SymmetricEigenTest, EigenvaluesSortedDescending) {
  Rng rng(17);
  Tensor a = RandomSymmetricPsd(8, &rng);
  auto r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  for (int64_t i = 1; i < 8; ++i) {
    EXPECT_GE(r->eigenvalues[i - 1], r->eigenvalues[i] - 1e-6f);
  }
}

TEST(SymmetricEigenTest, RejectsNonSquare) {
  EXPECT_FALSE(SymmetricEigen(Tensor(Shape{2, 3})).ok());
}

TEST(SymmetricEigenTest, RejectsAsymmetric) {
  Tensor a(Shape{2, 2}, {1, 5, -5, 1});
  EXPECT_FALSE(SymmetricEigen(a).ok());
}

TEST(TopKEigenTest, MatchesJacobiOnSmall) {
  Rng rng(19);
  Tensor a = RandomSymmetricPsd(20, &rng);
  auto full = SymmetricEigen(a);
  auto topk = TopKEigen(a, 3);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(topk.ok());
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(topk->eigenvalues[j], full->eigenvalues[j], 1e-3f);
  }
}

TEST(TopKEigenTest, SubspaceIterationOnLargeMatrix) {
  Rng rng(23);
  // d=150 > 128 triggers the iterative path.
  Tensor b = Tensor::RandN({150, 8}, &rng);
  Tensor a = MatMul(b, TransposeLast2(b));  // rank 8 PSD
  auto r = TopKEigen(a, 5, /*seed=*/7);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Eigen equation for retained pairs.
  Tensor av = MatMul(a, r->eigenvectors);
  for (int64_t j = 0; j < 5; ++j) {
    double num = 0, den = 0;
    for (int64_t i = 0; i < 150; ++i) {
      const double diff =
          av.at({i, j}) - r->eigenvalues[j] * r->eigenvectors.at({i, j});
      num += diff * diff;
      den += static_cast<double>(av.at({i, j})) * av.at({i, j});
    }
    EXPECT_LT(std::sqrt(num / std::max(den, 1e-9)), 5e-2)
        << "eigenpair " << j;
  }
  // Sorted descending, all non-negative for PSD.
  for (int64_t j = 1; j < 5; ++j) {
    EXPECT_GE(r->eigenvalues[j - 1], r->eigenvalues[j] - 1e-4f);
  }
  EXPECT_GE(r->eigenvalues[4], -1e-4f);
}

TEST(TopKEigenTest, RejectsBadK) {
  Tensor a = Tensor::Eye(4);
  EXPECT_FALSE(TopKEigen(a, 0).ok());
  EXPECT_FALSE(TopKEigen(a, 5).ok());
}

TEST(TruncatedSvdTest, ReconstructsLowRankMatrix) {
  Rng rng(29);
  Tensor u = Tensor::RandN({30, 3}, &rng);
  Tensor v = Tensor::RandN({3, 10}, &rng);
  Tensor x = MatMul(u, v);  // exactly rank 3
  auto svd = TruncatedSvd(x, 3);
  ASSERT_TRUE(svd.ok());
  // Reconstruct: U diag(S) Vt.
  Tensor us = svd->u.Clone();
  for (int64_t i = 0; i < 30; ++i) {
    for (int64_t j = 0; j < 3; ++j) us.at({i, j}) *= svd->s[j];
  }
  Tensor recon = MatMul(us, svd->vt);
  EXPECT_LT(RelativeError(x, recon), 1e-2f);
}

TEST(TruncatedSvdTest, SingularValuesDescending) {
  Rng rng(31);
  Tensor x = Tensor::RandN({40, 12}, &rng);
  auto svd = TruncatedSvd(x, 6);
  ASSERT_TRUE(svd.ok());
  for (int64_t j = 1; j < 6; ++j) {
    EXPECT_GE(svd->s[j - 1], svd->s[j] - 1e-4f);
  }
}

TEST(TruncatedSvdTest, RightVectorsOrthonormal) {
  Rng rng(37);
  Tensor x = Tensor::RandN({50, 8}, &rng);
  auto svd = TruncatedSvd(x, 4);
  ASSERT_TRUE(svd.ok());
  Tensor vvt = MatMul(svd->vt, TransposeLast2(svd->vt));
  EXPECT_LT(MaxAbsDiff(vvt, Tensor::Eye(4)), 1e-3f);
}

TEST(TruncatedSvdTest, RejectsBadInput) {
  EXPECT_FALSE(TruncatedSvd(Tensor(Shape{3}), 1).ok());
  EXPECT_FALSE(TruncatedSvd(Tensor(Shape{3, 3}), 0).ok());
  EXPECT_FALSE(TruncatedSvd(Tensor(Shape{3, 3}), 4).ok());
}

TEST(QrTest, ReconstructsAndOrthonormal) {
  Rng rng(41);
  Tensor a = Tensor::RandN({12, 5}, &rng);
  auto qr = QrDecomposition(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_LT(RelativeError(a, MatMul(qr->q, qr->r)), 1e-4f);
  Tensor qtq = MatMul(TransposeLast2(qr->q), qr->q);
  EXPECT_LT(MaxAbsDiff(qtq, Tensor::Eye(5)), 1e-4f);
  // R upper triangular.
  for (int64_t i = 1; i < 5; ++i) {
    for (int64_t j = 0; j < i; ++j) {
      EXPECT_NEAR(qr->r.at({i, j}), 0.0f, 1e-6f);
    }
  }
}

TEST(QrTest, RejectsWideAndRankDeficient) {
  EXPECT_FALSE(QrDecomposition(Tensor(Shape{3, 5})).ok());
  Tensor deficient(Shape{4, 2});  // all zeros
  EXPECT_FALSE(QrDecomposition(deficient).ok());
}

TEST(RelativeErrorTest, ZeroForIdentical) {
  Rng rng(43);
  Tensor a = Tensor::RandN({4, 4}, &rng);
  EXPECT_EQ(RelativeError(a, a), 0.0f);
}

}  // namespace
}  // namespace tsfm
