#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/corpus.h"
#include "data/dataset.h"
#include "data/uea_like.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

data::TimeSeriesDataset TinyDataset() {
  data::TimeSeriesDataset ds;
  ds.name = "tiny";
  ds.num_classes = 2;
  ds.x = Tensor(Shape{4, 3, 2}, {// sample 0
                                 1, 10, 2, 20, 3, 30,
                                 // sample 1
                                 2, 10, 3, 20, 4, 30,
                                 // sample 2
                                 0, 0, 0, 0, 0, 0,
                                 // sample 3
                                 5, 50, 5, 50, 5, 50});
  ds.y = {0, 1, 0, 1};
  return ds;
}

TEST(DatasetTest, ValidateAcceptsGoodAndRejectsBad) {
  data::TimeSeriesDataset ds = TinyDataset();
  EXPECT_TRUE(data::Validate(ds).ok());
  ds.y[0] = 7;
  EXPECT_FALSE(data::Validate(ds).ok());
  ds = TinyDataset();
  ds.y.pop_back();
  EXPECT_FALSE(data::Validate(ds).ok());
  ds = TinyDataset();
  ds.num_classes = 0;
  EXPECT_FALSE(data::Validate(ds).ok());
  ds = TinyDataset();
  ds.x = Tensor(Shape{4, 6});
  EXPECT_FALSE(data::Validate(ds).ok());
}

TEST(DatasetTest, ChannelStatsAndNormalize) {
  data::TimeSeriesDataset ds = TinyDataset();
  data::ChannelStats stats = data::ComputeChannelStats(ds);
  EXPECT_EQ(stats.mean.shape(), (Shape{2}));
  // Normalized data has ~zero mean / unit variance per channel.
  data::TimeSeriesDataset norm = data::NormalizeWith(ds, stats);
  data::ChannelStats after = data::ComputeChannelStats(norm);
  EXPECT_NEAR(after.mean[0], 0.0f, 1e-5f);
  EXPECT_NEAR(after.mean[1], 0.0f, 1e-5f);
  EXPECT_NEAR(after.std[0], 1.0f, 1e-4f);
  EXPECT_NEAR(after.std[1], 1.0f, 1e-4f);
}

TEST(DatasetTest, NormalizeHandlesConstantChannel) {
  data::TimeSeriesDataset ds = TinyDataset();
  // Make channel 1 constant.
  for (int64_t i = 0; i < ds.x.numel(); i += 2) {
    ds.x.mutable_data()[i + 1] = 3.0f;
  }
  data::ChannelStats stats = data::ComputeChannelStats(ds);
  data::TimeSeriesDataset norm = data::NormalizeWith(ds, stats);
  for (int64_t i = 0; i < norm.x.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(norm.x[i]));
  }
}

TEST(DatasetTest, SelectPreservesPairing) {
  data::TimeSeriesDataset ds = TinyDataset();
  data::TimeSeriesDataset sel = data::Select(ds, {3, 0});
  EXPECT_EQ(sel.size(), 2);
  EXPECT_EQ(sel.y[0], 1);
  EXPECT_EQ(sel.y[1], 0);
  EXPECT_EQ(sel.x.at({0, 0, 0}), 5.0f);
  EXPECT_EQ(sel.x.at({1, 0, 0}), 1.0f);
}

TEST(DatasetTest, SubsampleCapsSize) {
  data::TimeSeriesDataset ds = TinyDataset();
  Rng rng(1);
  EXPECT_EQ(data::Subsample(ds, 10, &rng).size(), 4);  // no-op
  data::TimeSeriesDataset sub = data::Subsample(ds, 2, &rng);
  EXPECT_EQ(sub.size(), 2);
  EXPECT_TRUE(data::Validate(sub).ok());
}

TEST(DatasetTest, TruncateLengthAndChannels) {
  data::TimeSeriesDataset ds = TinyDataset();
  data::TimeSeriesDataset t = data::TruncateLength(ds, 2);
  EXPECT_EQ(t.length(), 2);
  EXPECT_EQ(t.x.at({0, 1, 0}), 2.0f);
  data::TimeSeriesDataset c = data::TruncateChannels(ds, 1);
  EXPECT_EQ(c.channels(), 1);
  EXPECT_EQ(c.x.at({0, 0, 0}), 1.0f);
  // No-ops when under the cap.
  EXPECT_EQ(data::TruncateLength(ds, 100).length(), 3);
  EXPECT_EQ(data::TruncateChannels(ds, 100).channels(), 2);
}

TEST(DatasetTest, MakeBatchesCoversAllIndices) {
  Rng rng(2);
  auto batches = data::MakeBatches(10, 3, &rng);
  EXPECT_EQ(batches.size(), 4u);  // 3+3+3+1
  std::set<int64_t> seen;
  for (const auto& b : batches) {
    for (int64_t i : b) seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 10u);
  // Sequential when rng is null.
  auto seq = data::MakeBatches(5, 2, nullptr);
  EXPECT_EQ(seq[0], (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(seq[2], (std::vector<int64_t>{4}));
}

TEST(DatasetTest, ClassCountsAndAccuracy) {
  data::TimeSeriesDataset ds = TinyDataset();
  auto counts = data::ClassCounts(ds);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(data::Accuracy({0, 1, 0, 1}, ds), 1.0);
  EXPECT_EQ(data::Accuracy({1, 0, 1, 0}, ds), 0.0);
  EXPECT_EQ(data::Accuracy({0, 0, 0, 0}, ds), 0.5);
}

// ------------------------------ UEA specs ---------------------------------

TEST(UeaSpecTest, TwelveDatasetsMatchPaperTable3) {
  const auto& specs = data::UeaSpecs();
  ASSERT_EQ(specs.size(), 12u);
  auto duck = data::FindUeaSpec("DuckDuckGeese");
  ASSERT_TRUE(duck.ok());
  EXPECT_EQ(duck->train_size, 60);
  EXPECT_EQ(duck->test_size, 40);
  EXPECT_EQ(duck->channels, 1345);
  EXPECT_EQ(duck->length, 270);
  EXPECT_EQ(duck->classes, 5);
  auto insect = data::FindUeaSpec("Insect");  // by abbreviation
  ASSERT_TRUE(insect.ok());
  EXPECT_EQ(insect->train_size, 1000);  // paper's subsample
  EXPECT_EQ(insect->test_size, 1000);
  // Every dataset has >= 10 channels (the paper's selection criterion).
  for (const auto& s : specs) EXPECT_GE(s.channels, 10);
  EXPECT_FALSE(data::FindUeaSpec("NoSuchDataset").ok());
}

TEST(UeaGeneratorTest, ShapesMatchSpecUnderCaps) {
  auto spec = *data::FindUeaSpec("NATOPS");
  data::GeneratorCaps caps{50, 30, 40, 16};
  data::DatasetPair pair = data::GenerateUeaLike(spec, 1, caps);
  EXPECT_EQ(pair.train.size(), 50);
  EXPECT_EQ(pair.test.size(), 30);
  EXPECT_EQ(pair.train.length(), 40);
  EXPECT_EQ(pair.train.channels(), 16);
  EXPECT_EQ(pair.train.num_classes, 6);
  EXPECT_TRUE(data::Validate(pair.train).ok());
  EXPECT_TRUE(data::Validate(pair.test).ok());
}

TEST(UeaGeneratorTest, UncappedShapesMatchSpec) {
  auto spec = *data::FindUeaSpec("Vowels");  // smallest dataset
  data::DatasetPair pair =
      data::GenerateUeaLike(spec, 1, data::GeneratorCaps{});
  EXPECT_EQ(pair.train.size(), 270);
  EXPECT_EQ(pair.test.size(), 370);
  EXPECT_EQ(pair.train.channels(), 12);
  EXPECT_EQ(pair.train.length(), 29);
}

TEST(UeaGeneratorTest, DeterministicPerSeed) {
  auto spec = *data::FindUeaSpec("Finger");
  data::GeneratorCaps caps{20, 10, 20, 8};
  auto a = data::GenerateUeaLike(spec, 7, caps);
  auto b = data::GenerateUeaLike(spec, 7, caps);
  EXPECT_TRUE(AllClose(a.train.x, b.train.x));
  EXPECT_EQ(a.train.y, b.train.y);
  auto c = data::GenerateUeaLike(spec, 8, caps);
  EXPECT_GT(MaxAbsDiff(a.train.x, c.train.x), 1e-4f);
}

TEST(UeaGeneratorTest, AllClassesPresent) {
  auto spec = *data::FindUeaSpec("NATOPS");
  data::GeneratorCaps caps{120, 60, 30, 12};
  auto pair = data::GenerateUeaLike(spec, 3, caps);
  auto counts = data::ClassCounts(pair.train);
  for (int64_t c : counts) EXPECT_GT(c, 0);
}

TEST(UeaGeneratorTest, ChannelsAreCorrelated) {
  // The low-rank latent structure must induce strong cross-channel
  // correlation (this is the property PCA exploits).
  auto spec = *data::FindUeaSpec("Heart");
  data::GeneratorCaps caps{40, 10, 50, 32};
  auto pair = data::GenerateUeaLike(spec, 5, caps);
  Tensor flat = pair.train.x.Reshape({-1, 32});
  // Center columns.
  Tensor centered = Sub(flat, Mean(flat, 0, true));
  Tensor cov = Scale(MatMul(TransposeLast2(centered), centered),
                     1.0f / static_cast<float>(flat.dim(0)));
  // Count strongly correlated pairs.
  int strong = 0, total = 0;
  for (int64_t i = 0; i < 32; ++i) {
    for (int64_t j = i + 1; j < 32; ++j) {
      const float r = cov.at({i, j}) /
                      std::sqrt(cov.at({i, i}) * cov.at({j, j}) + 1e-12f);
      if (std::fabs(r) > 0.4f) ++strong;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(strong) / total, 0.2);
}

TEST(UeaGeneratorTest, ChannelVariancesAreHeterogeneous) {
  // VARiance-based selection needs channels with clearly different variances.
  auto spec = *data::FindUeaSpec("PEMS-SF");
  data::GeneratorCaps caps{30, 10, 40, 64};
  auto pair = data::GenerateUeaLike(spec, 2, caps);
  Tensor var = Variance(pair.train.x.Reshape({-1, 64}), 0);
  EXPECT_GT(MaxAll(var) / (MinAll(var) + 1e-9f), 3.0f);
}

TEST(UeaGeneratorTest, TrainTestFromSameProcess) {
  // A nearest-centroid rule fitted on train should beat chance on test,
  // i.e. the two splits share the class-conditional structure.
  auto spec = *data::FindUeaSpec("Vowels");
  data::GeneratorCaps caps{120, 80, 29, 12};
  auto pair = data::GenerateUeaLike(spec, 11, caps);
  const int64_t c = pair.train.num_classes;
  const int64_t feat = pair.train.length() * pair.train.channels();
  // Class centroids in flattened space.
  std::vector<std::vector<double>> centroids(
      static_cast<size_t>(c), std::vector<double>(static_cast<size_t>(feat)));
  std::vector<int64_t> counts(static_cast<size_t>(c), 0);
  Tensor train_flat = pair.train.x.Reshape({pair.train.size(), feat});
  for (int64_t i = 0; i < pair.train.size(); ++i) {
    const int64_t label = pair.train.y[static_cast<size_t>(i)];
    ++counts[static_cast<size_t>(label)];
    for (int64_t f = 0; f < feat; ++f) {
      centroids[static_cast<size_t>(label)][static_cast<size_t>(f)] +=
          train_flat.at({i, f});
    }
  }
  for (int64_t k = 0; k < c; ++k) {
    for (auto& v : centroids[static_cast<size_t>(k)]) {
      v /= std::max<int64_t>(1, counts[static_cast<size_t>(k)]);
    }
  }
  Tensor test_flat = pair.test.x.Reshape({pair.test.size(), feat});
  int64_t correct = 0;
  for (int64_t i = 0; i < pair.test.size(); ++i) {
    double best = 1e300;
    int64_t best_k = 0;
    for (int64_t k = 0; k < c; ++k) {
      double dist = 0;
      for (int64_t f = 0; f < feat; ++f) {
        const double d =
            test_flat.at({i, f}) -
            centroids[static_cast<size_t>(k)][static_cast<size_t>(f)];
        dist += d * d;
      }
      if (dist < best) {
        best = dist;
        best_k = k;
      }
    }
    if (best_k == pair.test.y[static_cast<size_t>(i)]) ++correct;
  }
  const double acc =
      static_cast<double>(correct) / static_cast<double>(pair.test.size());
  EXPECT_GT(acc, 1.5 / static_cast<double>(c)) << "accuracy " << acc;
}

// ------------------------------- Corpus ------------------------------------

TEST(CorpusTest, ShapeAndNormalization) {
  Tensor corpus = data::GeneratePretrainCorpus(50, 64, 1);
  ASSERT_EQ(corpus.shape(), (Shape{50, 64}));
  for (int64_t i = 0; i < 50; ++i) {
    double mean = 0, var = 0;
    for (int64_t t = 0; t < 64; ++t) mean += corpus.at({i, t});
    mean /= 64;
    for (int64_t t = 0; t < 64; ++t) {
      var += (corpus.at({i, t}) - mean) * (corpus.at({i, t}) - mean);
    }
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(CorpusTest, Deterministic) {
  Tensor a = data::GeneratePretrainCorpus(10, 32, 42);
  Tensor b = data::GeneratePretrainCorpus(10, 32, 42);
  EXPECT_TRUE(AllClose(a, b));
  Tensor c = data::GeneratePretrainCorpus(10, 32, 43);
  EXPECT_GT(MaxAbsDiff(a, c), 1e-3f);
}

TEST(CorpusTest, AugmentViewPreservesShapeButPerturbs) {
  Tensor corpus = data::GeneratePretrainCorpus(8, 32, 3);
  Rng rng(4);
  Tensor view = data::AugmentView(corpus, &rng);
  EXPECT_EQ(view.shape(), corpus.shape());
  EXPECT_GT(MaxAbsDiff(view, corpus), 1e-3f);
  // Augmented view stays correlated with the source (same underlying shape).
  double dot = 0, na = 0, nb = 0;
  for (int64_t i = 0; i < corpus.numel(); ++i) {
    dot += static_cast<double>(corpus[i]) * view[i];
    na += static_cast<double>(corpus[i]) * corpus[i];
    nb += static_cast<double>(view[i]) * view[i];
  }
  EXPECT_GT(std::fabs(dot) / std::sqrt(na * nb), 0.2);
}

}  // namespace
}  // namespace tsfm
