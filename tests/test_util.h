#ifndef TSFM_TESTS_TEST_UTIL_H_
#define TSFM_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "tensor/ops.h"

namespace tsfm::testing {

/// Checks analytic gradients of `fn` (a scalar-valued function of one input
/// tensor) against central finite differences at `x0`.
///
/// `fn` must build its output from a fresh leaf each call so that the tape is
/// clean. Tolerances are loose-ish because everything is float32.
inline void ExpectGradientsMatch(
    const std::function<ag::Var(const ag::Var&)>& fn, const Tensor& x0,
    float epsilon = 1e-2f, float rtol = 5e-2f, float atol = 5e-3f) {
  // Analytic gradient.
  ag::Var leaf(x0.Clone(), /*requires_grad=*/true);
  ag::Var out = fn(leaf);
  ASSERT_EQ(out.value().numel(), 1) << "gradcheck needs a scalar output";
  out.Backward();
  Tensor analytic = leaf.grad();

  // Central differences.
  Tensor numeric(x0.shape());
  Tensor probe = x0.Clone();
  for (int64_t i = 0; i < x0.numel(); ++i) {
    const float orig = probe.mutable_data()[i];
    probe.mutable_data()[i] = orig + epsilon;
    const float up = fn(ag::Var(probe.Clone(), false)).value()[0];
    probe.mutable_data()[i] = orig - epsilon;
    const float down = fn(ag::Var(probe.Clone(), false)).value()[0];
    probe.mutable_data()[i] = orig;
    numeric.mutable_data()[i] = (up - down) / (2.0f * epsilon);
  }

  for (int64_t i = 0; i < x0.numel(); ++i) {
    const float a = analytic[i];
    const float n = numeric[i];
    const float tol = atol + rtol * std::fabs(n);
    EXPECT_NEAR(a, n, tol) << "gradient mismatch at flat index " << i;
  }
}

}  // namespace tsfm::testing

#endif  // TSFM_TESTS_TEST_UTIL_H_
