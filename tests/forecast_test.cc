#include <cmath>

#include <gtest/gtest.h>

#include "data/corpus.h"
#include "finetune/forecast.h"
#include "models/moment.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

using finetune::EvaluateForecaster;
using finetune::FitForecaster;
using finetune::Forecast;
using finetune::ForecastingHead;
using finetune::ForecastOptions;

// Predictable series: pure sinusoids with per-sample frequency/phase.
Tensor SineSeries(int64_t n, int64_t t, uint64_t seed) {
  Rng rng(seed);
  Tensor out(Shape{n, t});
  for (int64_t i = 0; i < n; ++i) {
    const float f = static_cast<float>(rng.Uniform(2.0, 4.0));
    const float phase = static_cast<float>(rng.Uniform(0.0, 2.0 * M_PI));
    for (int64_t s = 0; s < t; ++s) {
      out.at({i, s}) = std::sin(2.0f * static_cast<float>(M_PI) * f * s /
                                    static_cast<float>(t) +
                                phase);
    }
  }
  return out;
}

class ForecastTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(3);
    models::FoundationModelConfig config = models::MomentSmallConfig();
    config.dropout = 0.0f;
    model_ = std::make_unique<models::MomentModel>(config, &rng);
    models::PretrainOptions o;
    o.corpus_size = 128;
    o.series_length = 64;
    o.epochs = 2;
    ASSERT_TRUE(model_->Pretrain(o).ok());
  }

  std::unique_ptr<models::MomentModel> model_;
};

TEST_F(ForecastTest, BeatsPersistenceOnSinusoids) {
  Tensor train = SineSeries(64, 64, 1);
  Tensor test = SineSeries(32, 64, 2);
  Rng head_rng(5);
  ForecastingHead head(model_->embedding_dim(), 8, &head_rng);
  ForecastOptions options;
  options.horizon = 8;
  options.epochs = 60;
  auto loss = FitForecaster(*model_, &head, train, options);
  ASSERT_TRUE(loss.ok()) << loss.status().ToString();
  auto metrics = EvaluateForecaster(*model_, head, test);
  ASSERT_TRUE(metrics.ok());
  // Persistence is a poor forecaster of a sinusoid; the trained head must
  // clearly beat it.
  EXPECT_LT(metrics->mse, 0.7 * metrics->naive_mse)
      << "model " << metrics->mse << " vs naive " << metrics->naive_mse;
  EXPECT_LT(metrics->mae, metrics->naive_mae);
}

TEST_F(ForecastTest, TrainingReducesLoss) {
  Tensor train = SineSeries(48, 64, 7);
  Rng head_rng(6);
  ForecastingHead head(model_->embedding_dim(), 8, &head_rng);
  ForecastOptions few;
  few.epochs = 2;
  ForecastOptions many;
  many.epochs = 40;
  Rng head_rng2(6);
  ForecastingHead head2(model_->embedding_dim(), 8, &head_rng2);
  auto loss_few = FitForecaster(*model_, &head, train, few);
  auto loss_many = FitForecaster(*model_, &head2, train, many);
  ASSERT_TRUE(loss_few.ok());
  ASSERT_TRUE(loss_many.ok());
  EXPECT_LT(*loss_many, *loss_few);
}

TEST_F(ForecastTest, ForecastShape) {
  Tensor contexts = SineSeries(5, 56, 9);
  Rng head_rng(7);
  ForecastingHead head(model_->embedding_dim(), 12, &head_rng);
  auto pred = Forecast(*model_, head, contexts);
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->shape(), (Shape{5, 12}));
}

TEST_F(ForecastTest, RejectsBadInputs) {
  Rng head_rng(8);
  ForecastingHead head(model_->embedding_dim(), 8, &head_rng);
  ForecastOptions options;
  options.horizon = 8;
  // 3-D input.
  EXPECT_FALSE(FitForecaster(*model_, &head, Tensor(Shape{4, 8, 2}), options)
                   .ok());
  // Series shorter than horizon + one patch.
  EXPECT_FALSE(FitForecaster(*model_, &head, Tensor(Shape{4, 12}), options)
                   .ok());
  // Bad horizon.
  options.horizon = 0;
  EXPECT_FALSE(FitForecaster(*model_, &head, Tensor(Shape{4, 64}), options)
                   .ok());
  EXPECT_FALSE(Forecast(*model_, head, Tensor(Shape{4})).ok());
}

TEST_F(ForecastTest, DeterministicGivenSeed) {
  Tensor train = SineSeries(32, 64, 11);
  auto run = [&]() {
    Rng head_rng(9);
    ForecastingHead head(model_->embedding_dim(), 4, &head_rng);
    ForecastOptions options;
    options.horizon = 4;
    options.epochs = 5;
    EXPECT_TRUE(FitForecaster(*model_, &head, train, options).ok());
    auto pred = Forecast(*model_, head, Slice(train, 1, 0, 60));
    return pred->Clone();
  };
  EXPECT_TRUE(AllClose(run(), run(), 0.0f));
}

}  // namespace
}  // namespace tsfm
