#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/uea_like.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

data::TimeSeriesDataset SmallDataset() {
  data::UeaDatasetSpec spec{"csvtest", "csvtest", 6, 4, 3, 5, 2, 2};
  return data::GenerateUeaLike(spec, 3, data::GeneratorCaps{}).train;
}

TEST(CsvTest, RoundTripPreservesEverything) {
  data::TimeSeriesDataset ds = SmallDataset();
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(data::SaveCsv(ds, path).ok());
  auto loaded = data::LoadCsv(path, ds.name);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), ds.size());
  EXPECT_EQ(loaded->length(), ds.length());
  EXPECT_EQ(loaded->channels(), ds.channels());
  EXPECT_EQ(loaded->num_classes, ds.num_classes);
  EXPECT_EQ(loaded->y, ds.y);
  EXPECT_LT(MaxAbsDiff(loaded->x, ds.x), 1e-4f);  // float printing precision
}

TEST(CsvTest, SaveRejectsInvalidDataset) {
  data::TimeSeriesDataset bad;
  bad.x = Tensor(Shape{2, 2});  // not 3-D
  bad.num_classes = 1;
  EXPECT_FALSE(data::SaveCsv(bad, TempPath("bad.csv")).ok());
}

TEST(CsvTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(data::LoadCsv("/nonexistent/file.csv").ok());
}

TEST(CsvTest, LoadRejectsMalformedHeader) {
  const std::string path = TempPath("badheader.csv");
  std::ofstream(path) << "a,b,c\n1,2,3\n";
  EXPECT_FALSE(data::LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, LoadRejectsRaggedChannels) {
  const std::string path = TempPath("ragged.csv");
  std::ofstream(path) << "sample,label,t,ch0,ch1\n0,0,0,1.0,2.0\n0,0,1,1.0\n";
  EXPECT_FALSE(data::LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, LoadRejectsRaggedLengths) {
  const std::string path = TempPath("raggedlen.csv");
  std::ofstream(path) << "sample,label,t,ch0\n"
                      << "0,0,0,1.0\n0,0,1,2.0\n"
                      << "1,1,0,3.0\n";  // sample 1 has only one step
  EXPECT_FALSE(data::LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, LoadRejectsInconsistentLabels) {
  const std::string path = TempPath("badlabel.csv");
  std::ofstream(path) << "sample,label,t,ch0\n0,0,0,1.0\n0,1,1,2.0\n";
  EXPECT_FALSE(data::LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, LoadSortsOutOfOrderTimeSteps) {
  const std::string path = TempPath("shuffled.csv");
  std::ofstream(path) << "sample,label,t,ch0\n"
                      << "0,1,1,20.0\n0,1,0,10.0\n";
  auto ds = data::LoadCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->x.at({0, 0, 0}), 10.0f);
  EXPECT_EQ(ds->x.at({0, 1, 0}), 20.0f);
  std::remove(path.c_str());
}

TEST(CsvTest, NumClassesInferredFromMaxLabel) {
  const std::string path = TempPath("classes.csv");
  std::ofstream(path) << "sample,label,t,ch0\n"
                      << "0,0,0,1.0\n"
                      << "1,4,0,2.0\n";
  auto ds = data::LoadCsv(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_classes, 5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tsfm
