#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace tsfm {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);  // scalar
  EXPECT_EQ(NumElements({0}), 0);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FromValues) {
  Tensor t(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

TEST(TensorTest, ScalarAndFull) {
  Tensor s = Tensor::Scalar(3.5f);
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s[0], 3.5f);
  Tensor f = Tensor::Full({3}, 2.0f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(f[i], 2.0f);
}

TEST(TensorTest, EyeAndArange) {
  Tensor eye = Tensor::Eye(3);
  EXPECT_EQ(eye.at({1, 1}), 1.0f);
  EXPECT_EQ(eye.at({1, 2}), 0.0f);
  Tensor ar = Tensor::Arange(4);
  EXPECT_EQ(ar[3], 3.0f);
}

TEST(TensorTest, NegativeDimAccess) {
  Tensor t(Shape{2, 3, 5});
  EXPECT_EQ(t.dim(-1), 5);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_EQ(t.dim(1), 3);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b = a;
  EXPECT_TRUE(a.SharesStorageWith(b));
  b.mutable_data()[0] = 9.0f;
  EXPECT_EQ(a[0], 9.0f);  // shared
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b = a.Clone();
  EXPECT_FALSE(a.SharesStorageWith(b));
  b.mutable_data()[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.Reshape({3, 2});
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_EQ(b.at({2, 1}), 6.0f);
}

TEST(TensorTest, ReshapeInfersDimension) {
  Tensor a(Shape{2, 6});
  Tensor b = a.Reshape({-1, 3});
  EXPECT_EQ(b.dim(0), 4);
  EXPECT_EQ(b.dim(1), 3);
  Tensor c = a.Reshape({3, -1});
  EXPECT_EQ(c.dim(1), 4);
}

TEST(TensorTest, RandNStatistics) {
  Rng rng(17);
  Tensor t = Tensor::RandN({200, 200}, &rng, 1.5f);
  double sum = 0, sq = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double n = static_cast<double>(t.numel());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 2.25, 0.05);
}

TEST(TensorTest, RandUniformRange) {
  Rng rng(23);
  Tensor t = Tensor::RandUniform({1000}, &rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(TensorTest, FillOverwrites) {
  Tensor t(Shape{4}, {1, 2, 3, 4});
  t.Fill(7.0f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 7.0f);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Arange(100);
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// ----------------------------- View semantics ------------------------------

TEST(TensorViewTest, NarrowIsAnAliasedWindow) {
  Tensor a = Tensor::Arange(12).Reshape({3, 4});
  Tensor v = a.Narrow(0, 1, 2);  // rows 1..2
  EXPECT_TRUE(v.SharesStorageWith(a));
  EXPECT_EQ(v.dim(0), 2);
  EXPECT_EQ(v.offset(), 4);
  EXPECT_FLOAT_EQ(v.at({0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(v.at({1, 3}), 11.0f);
  // Axis-0 windows of a contiguous tensor stay contiguous (batch selection
  // is zero-copy AND dense).
  EXPECT_TRUE(v.is_contiguous());
  // A middle-axis window is a genuine strided view.
  Tensor w = a.Narrow(1, 1, 2);
  EXPECT_FALSE(w.is_contiguous());
  EXPECT_FLOAT_EQ(w.at({2, 1}), 10.0f);
}

TEST(TensorViewTest, PermuteAxesReadsMatchContiguousCopy) {
  Rng rng(5);
  Tensor a = Tensor::RandN({2, 3, 4}, &rng);
  Tensor t = a.PermuteAxes({2, 0, 1});  // (4, 2, 3)
  EXPECT_TRUE(t.SharesStorageWith(a));
  EXPECT_FALSE(t.is_contiguous());
  Tensor c = t.Contiguous();
  EXPECT_FALSE(c.SharesStorageWith(a));
  EXPECT_TRUE(c.is_contiguous());
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 2; ++j) {
      for (int64_t k = 0; k < 3; ++k) {
        // Strided reads through the view agree with the packed copy and
        // with the source indexed directly.
        EXPECT_FLOAT_EQ(t.at({i, j, k}), a.at({j, k, i}));
        EXPECT_FLOAT_EQ(c.at({i, j, k}), a.at({j, k, i}));
      }
    }
  }
}

TEST(TensorViewTest, FlatIndexingIsStrideAware) {
  Tensor a = Tensor::Arange(6).Reshape({2, 3});
  Tensor t = a.PermuteAxes({1, 0});  // (3, 2): [[0,3],[1,4],[2,5]]
  Tensor c = t.Contiguous();
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], c[i]);
}

TEST(TensorViewTest, ContiguousOnContiguousIsFree) {
  Tensor a(Shape{2, 3});
  Tensor c = a.Contiguous();
  EXPECT_TRUE(c.SharesStorageWith(a));  // no copy when already dense
}

TEST(TensorViewTest, CloneOfViewIsDeepAndPacked) {
  Tensor a = Tensor::Arange(12).Reshape({3, 4});
  Tensor v = a.PermuteAxes({1, 0});
  Tensor c = v.Clone();
  EXPECT_FALSE(c.SharesStorageWith(a));
  EXPECT_TRUE(c.is_contiguous());
  EXPECT_FLOAT_EQ(c.at({3, 2}), v.at({3, 2}));
  // Mutating the clone leaves the source untouched.
  c.mutable_data()[0] = 99.0f;
  EXPECT_FLOAT_EQ(a.at({0, 0}), 0.0f);
}

TEST(TensorViewTest, ReshapeOfNonContiguousViewMaterializes) {
  Tensor a = Tensor::Arange(6).Reshape({2, 3});
  Tensor t = a.PermuteAxes({1, 0});
  Tensor r = t.Reshape({6});
  // The regrouping can't be expressed with strides, so it must be a copy —
  // in transposed (column-major) order.
  EXPECT_FALSE(r.SharesStorageWith(a));
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[1], 3.0f);
  EXPECT_FLOAT_EQ(r[2], 1.0f);
}

TEST(TensorViewTest, FillThroughStridedViewHitsOnlyTheWindow) {
  Tensor a(Shape{3, 4});
  Tensor v = a.Narrow(1, 1, 2);
  v.Fill(5.0f);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(a.at({i, 0}), 0.0f);
    EXPECT_FLOAT_EQ(a.at({i, 1}), 5.0f);
    EXPECT_FLOAT_EQ(a.at({i, 2}), 5.0f);
    EXPECT_FLOAT_EQ(a.at({i, 3}), 0.0f);
  }
}

TEST(TensorViewDeathTest, DataOnNonContiguousViewAborts) {
  Tensor a(Shape{2, 3});
  Tensor t = a.PermuteAxes({1, 0});
  EXPECT_DEATH(t.data(), "non-contiguous");
  EXPECT_DEATH(t.mutable_data(), "non-contiguous");
}

TEST(TensorViewDeathTest, ScopedAliasCheckCatchesSharedMutation) {
  // The footgun this guards: mutable_data() on a Reshape'd tensor writes
  // through the original too. With a guard active that's fatal.
  Tensor a(Shape{2, 3});
  Tensor b = a.Reshape({3, 2});
  EXPECT_DEATH(
      {
        ScopedAliasCheck guard;
        b.mutable_data()[0] = 1.0f;
      },
      "shared tensor storage");
}

TEST(TensorViewTest, ScopedAliasCheckAllowsUniqueOwners) {
  ScopedAliasCheck guard;
  EXPECT_TRUE(ScopedAliasCheck::Active());
  Tensor a(Shape{2, 3});  // sole owner: mutation is fine
  a.mutable_data()[0] = 1.0f;
  a.Fill(2.0f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
}

TEST(TensorViewTest, AliasCheckInactiveByDefault) {
  EXPECT_FALSE(ScopedAliasCheck::Active());
}

TEST(TensorDeathTest, BadValueCountAborts) {
  EXPECT_DEATH(Tensor(Shape{2, 2}, {1.0f, 2.0f}), "value count");
}

TEST(TensorDeathTest, BadReshapeAborts) {
  Tensor t(Shape{2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "reshape");
}

TEST(TensorDeathTest, OutOfRangeAtAborts) {
  Tensor t(Shape{2, 2});
  EXPECT_DEATH(t.at({2, 0}), "CHECK");
}

}  // namespace
}  // namespace tsfm
