#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace tsfm {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);  // scalar
  EXPECT_EQ(NumElements({0}), 0);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FromValues) {
  Tensor t(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

TEST(TensorTest, ScalarAndFull) {
  Tensor s = Tensor::Scalar(3.5f);
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s[0], 3.5f);
  Tensor f = Tensor::Full({3}, 2.0f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(f[i], 2.0f);
}

TEST(TensorTest, EyeAndArange) {
  Tensor eye = Tensor::Eye(3);
  EXPECT_EQ(eye.at({1, 1}), 1.0f);
  EXPECT_EQ(eye.at({1, 2}), 0.0f);
  Tensor ar = Tensor::Arange(4);
  EXPECT_EQ(ar[3], 3.0f);
}

TEST(TensorTest, NegativeDimAccess) {
  Tensor t(Shape{2, 3, 5});
  EXPECT_EQ(t.dim(-1), 5);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_EQ(t.dim(1), 3);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b = a;
  EXPECT_TRUE(a.SharesStorageWith(b));
  b.mutable_data()[0] = 9.0f;
  EXPECT_EQ(a[0], 9.0f);  // shared
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b = a.Clone();
  EXPECT_FALSE(a.SharesStorageWith(b));
  b.mutable_data()[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.Reshape({3, 2});
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_EQ(b.at({2, 1}), 6.0f);
}

TEST(TensorTest, ReshapeInfersDimension) {
  Tensor a(Shape{2, 6});
  Tensor b = a.Reshape({-1, 3});
  EXPECT_EQ(b.dim(0), 4);
  EXPECT_EQ(b.dim(1), 3);
  Tensor c = a.Reshape({3, -1});
  EXPECT_EQ(c.dim(1), 4);
}

TEST(TensorTest, RandNStatistics) {
  Rng rng(17);
  Tensor t = Tensor::RandN({200, 200}, &rng, 1.5f);
  double sum = 0, sq = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double n = static_cast<double>(t.numel());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 2.25, 0.05);
}

TEST(TensorTest, RandUniformRange) {
  Rng rng(23);
  Tensor t = Tensor::RandUniform({1000}, &rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(TensorTest, FillOverwrites) {
  Tensor t(Shape{4}, {1, 2, 3, 4});
  t.Fill(7.0f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 7.0f);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Arange(100);
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(TensorDeathTest, BadValueCountAborts) {
  EXPECT_DEATH(Tensor(Shape{2, 2}, {1.0f, 2.0f}), "value count");
}

TEST(TensorDeathTest, BadReshapeAborts) {
  Tensor t(Shape{2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "reshape");
}

TEST(TensorDeathTest, OutOfRangeAtAborts) {
  Tensor t(Shape{2, 2});
  EXPECT_DEATH(t.at({2, 0}), "CHECK");
}

}  // namespace
}  // namespace tsfm
