// Tests for the extension features beyond the paper's core experiments:
// the supervised LDA adapter, Friedman/Nemenyi rank statistics, and MOMENT's
// imputation capability.

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "core/lda_adapter.h"
#include "core/pca_adapter.h"
#include "data/corpus.h"
#include "data/uea_like.h"
#include "models/moment.h"
#include "stats/stats.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

// ------------------------------ LDA adapter --------------------------------

// Two classes separated along one specific channel direction, plus noise
// channels of much larger variance (so PCA would pick the noise, LDA the
// signal).
data::TimeSeriesDataset LdaFriendlyData(int64_t n, int64_t t, uint64_t seed) {
  Rng rng(seed);
  data::TimeSeriesDataset ds;
  ds.name = "lda_toy";
  ds.num_classes = 2;
  ds.x = Tensor(Shape{n, t, 6});
  ds.y.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = static_cast<int64_t>(rng.UniformInt(2));
    ds.y[static_cast<size_t>(i)] = c;
    for (int64_t s = 0; s < t; ++s) {
      // Channel 0: small-variance, class-separating.
      ds.x.at({i, s, 0}) = (c == 0 ? -1.0f : 1.0f) +
                           static_cast<float>(rng.Normal(0.0, 0.3));
      // Channels 1-5: large-variance noise, class-independent.
      for (int64_t d = 1; d < 6; ++d) {
        ds.x.at({i, s, d}) = static_cast<float>(rng.Normal(0.0, 5.0));
      }
    }
  }
  return ds;
}

TEST(LdaAdapterTest, FindsDiscriminativeDirection) {
  data::TimeSeriesDataset ds = LdaFriendlyData(40, 12, 1);
  core::AdapterOptions options;
  options.out_channels = 1;
  core::LdaAdapter lda(options);
  ASSERT_TRUE(lda.Fit(ds.x, ds.y).ok());
  // The single projection direction must load mostly on channel 0.
  const Tensor& w = lda.components();  // (6, 1)
  float signal = std::fabs(w.at({0, 0}));
  float noise = 0.0f;
  for (int64_t d = 1; d < 6; ++d) noise = std::max(noise, std::fabs(w.at({d, 0})));
  EXPECT_GT(signal, 3.0f * noise);
  // And the 1-D projection separates the classes.
  Tensor proj = *lda.Transform(ds.x);  // (N, T, 1)
  double mean0 = 0, mean1 = 0;
  int64_t n0 = 0, n1 = 0;
  for (int64_t i = 0; i < ds.size(); ++i) {
    double m = 0;
    for (int64_t s = 0; s < ds.length(); ++s) m += proj.at({i, s, 0});
    m /= ds.length();
    if (ds.y[static_cast<size_t>(i)] == 0) {
      mean0 += m;
      ++n0;
    } else {
      mean1 += m;
      ++n1;
    }
  }
  mean0 /= std::max<int64_t>(n0, 1);
  mean1 /= std::max<int64_t>(n1, 1);
  EXPECT_GT(std::fabs(mean0 - mean1), 1.0);
}

TEST(LdaAdapterTest, BeatsPcaOnAdversarialVarianceStructure) {
  // PCA's first component chases the high-variance noise channels; LDA's
  // stays on the discriminative one.
  data::TimeSeriesDataset ds = LdaFriendlyData(40, 12, 2);
  core::AdapterOptions options;
  options.out_channels = 1;
  core::PcaAdapter pca(options);
  ASSERT_TRUE(pca.Fit(ds.x, ds.y).ok());
  EXPECT_LT(std::fabs(pca.components().at({0, 0})), 0.5f);  // PCA on noise
}

TEST(LdaAdapterTest, HandlesMoreDimensionsThanClasses) {
  // 2 classes => rank(Sb) = 1; ask for 3 output channels anyway.
  data::TimeSeriesDataset ds = LdaFriendlyData(30, 8, 3);
  core::AdapterOptions options;
  options.out_channels = 3;
  core::LdaAdapter lda(options);
  ASSERT_TRUE(lda.Fit(ds.x, ds.y).ok());
  auto out = lda.Transform(ds.x);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{30, 8, 3}));
}

TEST(LdaAdapterTest, FactoryAndSerialization) {
  auto adapter = core::CreateAdapter(core::AdapterKind::kLda, {});
  ASSERT_NE(adapter, nullptr);
  EXPECT_EQ(adapter->name(), "LDA");
  EXPECT_EQ(adapter->kind(), core::AdapterKind::kLda);
  EXPECT_STREQ(core::AdapterKindName(core::AdapterKind::kLda), "LDA");

  data::TimeSeriesDataset ds = LdaFriendlyData(24, 8, 4);
  core::AdapterOptions options;
  options.out_channels = 2;
  core::LdaAdapter lda(options);
  ASSERT_TRUE(lda.Fit(ds.x, ds.y).ok());
  const std::string path = ::testing::TempDir() + "/lda.bin";
  ASSERT_TRUE(core::SaveAdapter(lda, options, path).ok());
  auto loaded = core::LoadAdapter(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(AllClose(*lda.Transform(ds.x), *(*loaded)->Transform(ds.x)));
  std::remove(path.c_str());
}

TEST(LdaAdapterTest, RejectsBadInputs) {
  data::TimeSeriesDataset ds = LdaFriendlyData(10, 8, 5);
  core::AdapterOptions options;
  options.out_channels = 10;  // > D
  core::LdaAdapter too_many(options);
  EXPECT_FALSE(too_many.Fit(ds.x, ds.y).ok());
  options.out_channels = 2;
  core::LdaAdapter lda(options);
  std::vector<int64_t> short_labels(3, 0);
  EXPECT_FALSE(lda.Fit(ds.x, short_labels).ok());
  EXPECT_FALSE(lda.Transform(ds.x).ok());  // not fitted
}

// -------------------------- Friedman / Nemenyi -----------------------------

TEST(GammaTest, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(stats::RegularizedLowerGamma(1.0, x), 1.0 - std::exp(-x),
                1e-10);
  }
  EXPECT_DOUBLE_EQ(stats::RegularizedLowerGamma(2.5, 0.0), 0.0);
}

TEST(ChiSquareTest, KnownQuantiles) {
  // Chi-square with 3 df: P(X > 7.815) = 0.05.
  EXPECT_NEAR(stats::ChiSquareUpperTailP(7.815, 3), 0.05, 1e-3);
  // 1 df: P(X > 3.841) = 0.05.
  EXPECT_NEAR(stats::ChiSquareUpperTailP(3.841, 1), 0.05, 1e-3);
  EXPECT_DOUBLE_EQ(stats::ChiSquareUpperTailP(0.0, 4), 1.0);
}

TEST(FriedmanTest, DetectsConsistentWinner) {
  // Method 0 always best across 10 datasets: strongly significant.
  std::vector<std::vector<double>> acc;
  for (int d = 0; d < 10; ++d) {
    acc.push_back({0.9, 0.7, 0.5});
  }
  auto r = stats::FriedmanTest(acc);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->p_value, 0.001);
  EXPECT_DOUBLE_EQ(r->average_ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(r->average_ranks[2], 3.0);
}

TEST(FriedmanTest, NoSignalGivesLargeP) {
  // Winners rotate evenly: no consistent ranking.
  std::vector<std::vector<double>> acc;
  for (int d = 0; d < 12; ++d) {
    std::vector<double> row{0.5, 0.5, 0.5};
    row[d % 3] = 0.9;
    acc.push_back(row);
  }
  auto r = stats::FriedmanTest(acc);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->p_value, 0.5);
}

TEST(FriedmanTest, RejectsDegenerateInput) {
  EXPECT_FALSE(stats::FriedmanTest({}).ok());
  EXPECT_FALSE(stats::FriedmanTest({{0.5, 0.6}}).ok());        // 1 dataset
  EXPECT_FALSE(stats::FriedmanTest({{0.5}, {0.6}}).ok());      // 1 method
  EXPECT_FALSE(stats::FriedmanTest({{0.5, 0.6}, {0.5}}).ok()); // ragged
}

TEST(NemenyiTest, MatchesDemsarTable) {
  // k=5 methods, N=12 datasets: CD = 2.728 * sqrt(5*6 / (6*12)) = 1.7608.
  auto cd = stats::NemenyiCriticalDifference(5, 12);
  ASSERT_TRUE(cd.ok());
  EXPECT_NEAR(*cd, 1.7608, 1e-3);
  // More datasets shrink the CD.
  auto cd_big = stats::NemenyiCriticalDifference(5, 100);
  EXPECT_LT(*cd_big, *cd);
  EXPECT_FALSE(stats::NemenyiCriticalDifference(11, 12).ok());
  EXPECT_FALSE(stats::NemenyiCriticalDifference(5, 1).ok());
}

// ------------------------------ Imputation ---------------------------------

class ImputationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    // The reconstruction-quality assertion needs the (still CPU-sized)
    // "small" config; the unit-test config is too weak to beat zero-fill.
    models::FoundationModelConfig config = models::MomentSmallConfig();
    config.dropout = 0.0f;
    model_ = std::make_unique<models::MomentModel>(config, &rng);
    models::PretrainOptions o;
    o.corpus_size = 256;
    o.series_length = 32;
    o.epochs = 6;
    ASSERT_TRUE(model_->Pretrain(o).ok());
  }

  std::unique_ptr<models::MomentModel> model_;
};

TEST_F(ImputationTest, ReconstructionBeatsZeroFill) {
  Tensor series = data::GeneratePretrainCorpus(16, 32, 99);
  Rng rng(3);
  Tensor mask = Tensor::Zeros(series.shape());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    if (rng.Uniform() < 0.25) mask.mutable_data()[i] = 1.0f;
  }
  auto imputed = model_->Impute(series, mask);
  ASSERT_TRUE(imputed.ok()) << imputed.status().ToString();
  double err_imputed = 0.0, err_zero = 0.0;
  int64_t masked = 0;
  for (int64_t i = 0; i < series.numel(); ++i) {
    if (mask[i] == 0.0f) continue;
    ++masked;
    const double truth = series[i];
    err_imputed += ((*imputed)[i] - truth) * ((*imputed)[i] - truth);
    err_zero += truth * truth;  // zero-fill error
  }
  ASSERT_GT(masked, 0);
  EXPECT_LT(err_imputed / masked, err_zero / masked)
      << "imputation must beat filling with zeros";
}

TEST_F(ImputationTest, UnmaskedPositionsUntouched) {
  Tensor series = data::GeneratePretrainCorpus(4, 32, 100);
  Tensor mask = Tensor::Zeros(series.shape());
  mask.at({0, 5}) = 1.0f;
  auto imputed = model_->Impute(series, mask);
  ASSERT_TRUE(imputed.ok());
  for (int64_t i = 0; i < series.numel(); ++i) {
    if (mask[i] == 0.0f) {
      EXPECT_EQ((*imputed)[i], series[i]);
    }
  }
  EXPECT_NE(imputed->at({0, 5}), series.at({0, 5}));
}

TEST_F(ImputationTest, TailBeyondPatchesPreserved) {
  // T = 35 with patch_len 8 covers 32 steps; positions 32..34 can't be
  // reconstructed and must come back unchanged even if masked.
  Rng rng(5);
  Tensor series = Tensor::RandN({2, 35}, &rng);
  Tensor mask = Tensor::Ones(series.shape());
  auto imputed = model_->Impute(series, mask);
  ASSERT_TRUE(imputed.ok());
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t s = 32; s < 35; ++s) {
      EXPECT_EQ(imputed->at({i, s}), series.at({i, s}));
    }
  }
}

TEST_F(ImputationTest, RejectsBadShapes) {
  Tensor series(Shape{2, 32});
  EXPECT_FALSE(model_->Impute(series, Tensor(Shape{2, 16})).ok());
  EXPECT_FALSE(model_->Impute(Tensor(Shape{2, 4, 4}), Tensor(Shape{2, 4, 4}))
                   .ok());
}

}  // namespace
}  // namespace tsfm
