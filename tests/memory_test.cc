#include "memory/buffer_pool.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace tsfm {
namespace {

using memory::BufferPool;
using memory::PoolStats;

// The pool is process-wide and other fixtures may have touched it, so every
// test works with counter *deltas* around its own allocations.
PoolStats Snap() { return BufferPool::Instance().Snapshot(); }

// Restores the pool's enabled flag on scope exit (tests that flip it must
// not leak the disabled state into later tests).
class PoolEnabledGuard {
 public:
  PoolEnabledGuard() : was_enabled_(BufferPool::Instance().enabled()) {}
  ~PoolEnabledGuard() {
    BufferPool::Instance().SetEnabledForTesting(was_enabled_);
  }

 private:
  bool was_enabled_;
};

TEST(BucketCapacityTest, RoundsUpToPowerOfTwoFloors) {
  // Minimum bucket is 2^6 = 64 floats.
  EXPECT_EQ(BufferPool::BucketCapacity(1), 64);
  EXPECT_EQ(BufferPool::BucketCapacity(64), 64);
  EXPECT_EQ(BufferPool::BucketCapacity(65), 128);
  EXPECT_EQ(BufferPool::BucketCapacity(1000), 1024);
  EXPECT_EQ(BufferPool::BucketCapacity(1024), 1024);
  EXPECT_EQ(BufferPool::BucketCapacity(1025), 2048);
  // Largest pooled bucket is 2^26; above that, exact-size direct allocation.
  const int64_t max_bucket = int64_t{1} << BufferPool::kMaxBucketLog2;
  EXPECT_EQ(BufferPool::BucketCapacity(max_bucket), max_bucket);
  EXPECT_EQ(BufferPool::BucketCapacity(max_bucket + 1), max_bucket + 1);
}

TEST(BufferPoolTest, ReleasedBufferIsReusedWithoutHeapTraffic) {
  BufferPool& pool = BufferPool::Instance();
  PoolEnabledGuard guard;  // pooling semantics even under TSFM_DISABLE_POOL=1
  pool.SetEnabledForTesting(true);
  pool.Trim();  // start from empty freelists so the first Acquire must miss
  const PoolStats s0 = Snap();
  { Tensor t(Shape{1000}); }  // acquire + release one 1024-float bucket
  const PoolStats s1 = Snap();
  EXPECT_EQ(s1.acquires - s0.acquires, 1u);
  EXPECT_EQ(s1.releases - s0.releases, 1u);
  EXPECT_EQ(s1.heap_allocs - s0.heap_allocs, 1u);
  EXPECT_EQ(s1.pool_hits - s0.pool_hits, 0u);

  // Same bucket again: served from the freelist, zero heap traffic.
  { Tensor t(Shape{10, 100}); }
  const PoolStats s2 = Snap();
  EXPECT_EQ(s2.acquires - s1.acquires, 1u);
  EXPECT_EQ(s2.pool_hits - s1.pool_hits, 1u);
  EXPECT_EQ(s2.heap_allocs - s1.heap_allocs, 0u);
}

TEST(BufferPoolTest, ByteCountersTrackBucketCapacity) {
  PoolEnabledGuard guard;
  BufferPool::Instance().SetEnabledForTesting(true);
  const PoolStats s0 = Snap();
  const int64_t n = 1000;  // rounds up to 1024 floats
  const uint64_t cap_bytes =
      static_cast<uint64_t>(BufferPool::BucketCapacity(n)) * sizeof(float);
  Tensor t(Shape{n});
  const PoolStats s1 = Snap();
  EXPECT_EQ(s1.live_bytes - s0.live_bytes, cap_bytes);
  EXPECT_GE(s1.peak_live_bytes, s1.live_bytes);
}

TEST(BufferPoolTest, LiveBytesReturnToBaselineAfterRelease) {
  const PoolStats s0 = Snap();
  {
    Tensor a(Shape{512});
    Tensor b(Shape{64, 64});
    Tensor c = Add(a.Reshape(Shape{512}), Tensor::Ones(Shape{512}));
    (void)c;
  }
  const PoolStats s1 = Snap();
  EXPECT_EQ(s1.live_bytes, s0.live_bytes);
  EXPECT_EQ(s1.acquires - s0.acquires, s1.releases - s0.releases);
}

TEST(BufferPoolTest, ViewsAreZeroAllocation) {
  Tensor x = Tensor::Arange(4 * 6 * 8).Reshape(Shape{4, 6, 8});
  const PoolStats s0 = Snap();
  // Every layout op the fine-tune loops lean on: batch selection (axis-0
  // slice), time/channel slicing, reshape of a contiguous tensor, transpose,
  // and plain tensor copies. None may touch the allocator.
  Tensor batch = Slice(x, 0, 1, 3);
  Tensor steps = Slice(x, 1, 2, 5);
  Tensor chans = Slice(x, 2, 0, 4);
  Tensor flat = x.Reshape(Shape{24, 8});
  Tensor swapped = TransposeLast2(x);
  Tensor perm = Permute(x, {2, 0, 1});
  Tensor narrowed = x.Narrow(0, 0, 2);
  Tensor alias = x;
  const PoolStats s1 = Snap();
  EXPECT_EQ(s1.acquires - s0.acquires, 0u);
  EXPECT_EQ(s1.heap_allocs - s0.heap_allocs, 0u);
  // They really are views of x, not copies.
  EXPECT_TRUE(batch.SharesStorageWith(x));
  EXPECT_TRUE(steps.SharesStorageWith(x));
  EXPECT_TRUE(chans.SharesStorageWith(x));
  EXPECT_TRUE(flat.SharesStorageWith(x));
  EXPECT_TRUE(swapped.SharesStorageWith(x));
  EXPECT_TRUE(perm.SharesStorageWith(x));
  EXPECT_TRUE(narrowed.SharesStorageWith(x));
  EXPECT_TRUE(alias.SharesStorageWith(x));
}

TEST(BufferPoolTest, ViewKeepsStorageAliveAfterParentDies) {
  const PoolStats s0 = Snap();
  Tensor view;
  {
    Tensor parent = Tensor::Arange(100).Reshape(Shape{10, 10});
    view = Slice(parent, 0, 3, 5);
  }
  // The parent is gone but its buffer must stay live for the view.
  const PoolStats s1 = Snap();
  EXPECT_GT(s1.live_bytes, s0.live_bytes);
  EXPECT_FLOAT_EQ(view.at({0, 0}), 30.0f);
  EXPECT_FLOAT_EQ(view.at({1, 9}), 49.0f);
  view = Tensor();  // last alias dies -> storage released
  const PoolStats s2 = Snap();
  EXPECT_LE(s2.live_bytes, s0.live_bytes + 64 * sizeof(float));
}

TEST(BufferPoolTest, ThreadSafeUnderParallelFor) {
  const PoolStats s0 = Snap();
  // Hammer the pool from every worker: mixed sizes, immediate release.
  runtime::ParallelFor(0, 512, /*grain=*/1, [](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      Tensor t(Shape{(i % 7 + 1) * 50});
      Tensor u = Add(t, Tensor::Ones(t.shape()));
      ASSERT_FLOAT_EQ(u[0], 1.0f);
    }
  });
  const PoolStats s1 = Snap();
  EXPECT_EQ(s1.live_bytes, s0.live_bytes);
  EXPECT_EQ(s1.acquires - s0.acquires, s1.releases - s0.releases);
  EXPECT_GE(s1.acquires - s0.acquires, 512u * 3u);
}

TEST(BufferPoolTest, DisabledPoolPassesThroughToHeap) {
  BufferPool& pool = BufferPool::Instance();
  PoolEnabledGuard guard;
  pool.SetEnabledForTesting(true);
  pool.SetEnabledForTesting(false);
  const PoolStats s0 = Snap();
  { Tensor t(Shape{1000}); }
  const PoolStats s1 = Snap();
  // Exact-size heap allocation, freed (not cached) on release.
  EXPECT_EQ(s1.heap_allocs - s0.heap_allocs, 1u);
  EXPECT_EQ(s1.heap_frees - s0.heap_frees, 1u);
  EXPECT_EQ(s1.pool_hits - s0.pool_hits, 0u);
  EXPECT_EQ(s1.cached_bytes, s0.cached_bytes);
  EXPECT_EQ(s1.live_bytes, s0.live_bytes);

  pool.SetEnabledForTesting(true);
  // Back on: the release parks in a freelist instead of hitting the heap.
  { Tensor t(Shape{1000}); }
  const PoolStats s2 = Snap();
  EXPECT_EQ(s2.heap_frees, s1.heap_frees);
  EXPECT_GE(s2.cached_bytes, s1.cached_bytes);
}

TEST(BufferPoolTest, TrimFreesCachedBuffers) {
  BufferPool& pool = BufferPool::Instance();
  PoolEnabledGuard guard;
  pool.SetEnabledForTesting(true);
  { Tensor t(Shape{2048}); }  // leaves a cached bucket behind
  const PoolStats s0 = Snap();
  EXPECT_GT(s0.cached_bytes, 0u);
  pool.Trim();
  const PoolStats s1 = Snap();
  EXPECT_EQ(s1.cached_bytes, 0u);
  EXPECT_GT(s1.heap_frees, s0.heap_frees);
  EXPECT_EQ(s1.live_bytes, s0.live_bytes);  // live buffers untouched
}

TEST(BufferPoolTest, ResetPeakClampsToCurrentLive) {
  BufferPool& pool = BufferPool::Instance();
  { Tensor big(Shape{1 << 16}); }  // spike the peak, then release
  pool.ResetPeak();
  const PoolStats s = Snap();
  EXPECT_EQ(s.peak_live_bytes, s.live_bytes);
}

TEST(BufferPoolTest, PeakSeesTemporarySpike) {
  BufferPool& pool = BufferPool::Instance();
  pool.ResetPeak();
  const PoolStats s0 = Snap();
  { Tensor big(Shape{1 << 16}); }
  const PoolStats s1 = Snap();
  EXPECT_GE(s1.peak_live_bytes - s0.live_bytes,
            static_cast<uint64_t>(1 << 16) * sizeof(float));
  EXPECT_EQ(s1.live_bytes, s0.live_bytes);
}

}  // namespace
}  // namespace tsfm
