// Reproduces Figure 3 (Appendix C.2): per-dataset comparison between the
// plain lcomb adapter and its top-k regularized variant (k = 7) for both
// foundation models.

#include <cstdio>

#include "bench/grid.h"
#include "experiments/table.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();
  experiments::ExperimentRunner runner(config);

  std::vector<MethodSpec> methods{
      AdapterMethod(core::AdapterKind::kLcomb, config.out_channels),
      AdapterMethod(core::AdapterKind::kLcombTopK, config.out_channels)};
  const std::vector<models::ModelKind> kinds{models::ModelKind::kMoment,
                                             models::ModelKind::kVit};
  auto grid = RunGrid(&runner, runner.Datasets(), kinds, methods);

  experiments::Table table({"Dataset", "Model", "lcomb", "lcomb_top_k"});
  for (const auto& spec : runner.Datasets()) {
    for (models::ModelKind kind : kinds) {
      table.AddRow({spec.name, models::ModelKindName(kind),
                    grid.at({spec.name, kind, "lcomb"}).Cell(),
                    grid.at({spec.name, kind, "lcomb_top_k"}).Cell()});
    }
  }
  std::printf("Figure 3: lcomb vs lcomb_top_k (k = 7)\n\n%s\n",
              table.ToString().c_str());
  auto io = table.WriteCsv(BenchOutputDir() + "/fig3_lcomb_topk.csv");
  if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
