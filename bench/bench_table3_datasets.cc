// Reproduces Table 3 of the paper: the characteristics of the 12 UEA
// multivariate datasets, alongside the realized shapes of our synthetic
// generators under the active caps.

#include <cstdio>

#include "bench/grid.h"
#include "experiments/table.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();

  experiments::Table table({"Dataset", "Train", "Test", "Channels", "Length",
                            "Classes", "LatentDim", "RealizedTrain",
                            "RealizedChannels", "RealizedLength"});
  for (const auto& spec : data::UeaSpecs()) {
    data::DatasetPair pair = data::GenerateUeaLike(spec, 0, config.caps);
    table.AddRow({spec.name, std::to_string(spec.train_size),
                  std::to_string(spec.test_size),
                  std::to_string(spec.channels), std::to_string(spec.length),
                  std::to_string(spec.classes),
                  std::to_string(spec.latent_dim),
                  std::to_string(pair.train.size()),
                  std::to_string(pair.train.channels()),
                  std::to_string(pair.train.length())});
  }
  std::printf(
      "Table 3: dataset characteristics (paper columns) and the realized "
      "synthetic shapes used for scaled CPU training\n\n%s\n",
      table.ToString().c_str());
  auto io = table.WriteCsv(BenchOutputDir() + "/table3_datasets.csv");
  if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
