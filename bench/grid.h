#ifndef TSFM_BENCH_GRID_H_
#define TSFM_BENCH_GRID_H_

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "experiments/runner.h"

namespace tsfm::bench {

/// One column of a paper table: an adapter (or none) plus a fine-tuning
/// strategy.
struct MethodSpec {
  std::string label;
  std::optional<core::AdapterKind> adapter;
  core::AdapterOptions options;
  finetune::Strategy strategy = finetune::Strategy::kAdapterPlusHead;
};

/// "head / no adapter" column of Table 2.
MethodSpec HeadOnlyMethod();

/// Adapter+head column for `kind` at D' = `out_channels`.
MethodSpec AdapterMethod(core::AdapterKind kind, int64_t out_channels);

/// The seven columns of the paper's Table 2 (head-only + six adapters),
/// D' fixed to `out_channels` (the paper uses 5).
std::vector<MethodSpec> PaperTable2Methods(int64_t out_channels);

/// The four PCA configurations of Tables 4-5: PCA, Scaled PCA, Patch_8,
/// Patch_16.
std::vector<MethodSpec> PcaSensitivityMethods(int64_t out_channels);

/// Aggregated per-seed results of one (dataset, model, method) cell.
struct CellResult {
  std::vector<experiments::RunRecord> seeds;

  /// "mean+-std", or the COM/TO verdict if any seed hit one.
  std::string Cell() const;
  /// Mean test accuracy over completed seeds (NaN if none completed).
  double MeanAccuracy() const;
  /// True if every seed completed (no COM/TO).
  bool AllCompleted() const;
  /// Mean measured wall-clock of the scaled runs (seconds).
  double MeanMeasuredSeconds() const;
  /// Mean simulated paper-scale seconds (V100 cost model).
  double MeanSimulatedSeconds() const;
};

using GridKey =
    std::tuple<std::string /*dataset*/, models::ModelKind, std::string>;

/// Runs the full (dataset x model x method x seed) grid, printing progress to
/// stderr. A failing run aborts the process with its status message (grids
/// drive tested components; a failure indicates a bug, not an expected
/// condition).
///
/// Results are cached on disk (keyed by dataset/model/method/strategy/seed
/// and the generator caps) so the table and figure binaries share one set of
/// runs instead of re-training per binary. Delete the cache file (printed at
/// startup) to force re-running.
std::map<GridKey, CellResult> RunGrid(
    experiments::ExperimentRunner* runner,
    const std::vector<data::UeaDatasetSpec>& datasets,
    const std::vector<models::ModelKind>& model_kinds,
    const std::vector<MethodSpec>& methods);

/// Output directory for bench CSVs (env TSFM_BENCH_OUT, default ".").
std::string BenchOutputDir();

}  // namespace tsfm::bench

#endif  // TSFM_BENCH_GRID_H_
