// Ablation micro-benchmarks for the adapters themselves: fit cost and
// transform throughput as the channel count D grows. This quantifies the
// design trade-off called out in DESIGN.md — PCA/SVD pay an O(D^2)-plus
// eigendecomposition at fit time that Rand_Proj and VAR avoid, while all
// static adapters share the same cheap linear transform.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/adapter.h"
#include "tensor/tensor.h"

namespace tsfm {
namespace {

Tensor MakeData(int64_t d, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandN({32, 32, d}, &rng);
}

std::vector<int64_t> MakeLabels(int64_t n) {
  std::vector<int64_t> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) y[static_cast<size_t>(i)] = i % 2;
  return y;
}

template <core::AdapterKind kKind>
void BM_AdapterFit(benchmark::State& state) {
  const int64_t d = state.range(0);
  Tensor x = MakeData(d, 1);
  auto labels = MakeLabels(32);
  core::AdapterOptions options;
  options.out_channels = 5;
  for (auto _ : state) {
    auto adapter = core::CreateAdapter(kKind, options);
    benchmark::DoNotOptimize(adapter->Fit(x, labels).ok());
  }
}
BENCHMARK_TEMPLATE(BM_AdapterFit, core::AdapterKind::kPca)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);
BENCHMARK_TEMPLATE(BM_AdapterFit, core::AdapterKind::kSvd)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);
BENCHMARK_TEMPLATE(BM_AdapterFit, core::AdapterKind::kRandProj)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);
BENCHMARK_TEMPLATE(BM_AdapterFit, core::AdapterKind::kVar)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

template <core::AdapterKind kKind>
void BM_AdapterTransform(benchmark::State& state) {
  const int64_t d = state.range(0);
  Tensor x = MakeData(d, 2);
  auto labels = MakeLabels(32);
  core::AdapterOptions options;
  options.out_channels = 5;
  auto adapter = core::CreateAdapter(kKind, options);
  auto st = adapter->Fit(x, labels);
  if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  for (auto _ : state) {
    auto out = adapter->Transform(x);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK_TEMPLATE(BM_AdapterTransform, core::AdapterKind::kPca)
    ->Arg(64)
    ->Arg(256);
BENCHMARK_TEMPLATE(BM_AdapterTransform, core::AdapterKind::kVar)
    ->Arg(64)
    ->Arg(256);

void BM_PatchPcaFit(benchmark::State& state) {
  // Patch-PCA fit cost vs window size: the design matrix widens to pws * D.
  const int64_t pws = state.range(0);
  Tensor x = MakeData(32, 3);
  auto labels = MakeLabels(32);
  core::AdapterOptions options;
  options.out_channels = 5;
  options.pca_patch_window = pws;
  for (auto _ : state) {
    auto adapter = core::CreateAdapter(core::AdapterKind::kPca, options);
    benchmark::DoNotOptimize(adapter->Fit(x, labels).ok());
  }
}
BENCHMARK(BM_PatchPcaFit)->Arg(1)->Arg(8)->Arg(16);

void BM_LcombTransformVar(benchmark::State& state) {
  // Differentiable transform of the learnable adapter (per training step).
  const int64_t d = state.range(0);
  Tensor x = MakeData(d, 4);
  auto labels = MakeLabels(32);
  core::AdapterOptions options;
  options.out_channels = 5;
  auto adapter = core::CreateAdapter(core::AdapterKind::kLcombTopK, options);
  auto st = adapter->Fit(x, labels);
  if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  for (auto _ : state) {
    ag::Var out = adapter->TransformVar(ag::Constant(x));
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_LcombTransformVar)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace tsfm

BENCHMARK_MAIN();
