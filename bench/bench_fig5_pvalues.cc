// Reproduces Figure 5 (Appendix C.4): heatmaps of pairwise Welch p-values
// between fine-tuning methods for MOMENT (a) and ViT (b). The paper's
// conclusion — no statistically significant difference between any pair of
// methods (minimum p-value 0.46 for MOMENT and 0.25 for ViT) — is what the
// adapters' "no accuracy loss" claim rests on.
//
// Protocol: for each method, collect its per-seed accuracies averaged over
// datasets where *all* compared methods completed, then run a two-sample
// Welch t-test per method pair.

#include <cmath>
#include <cstdio>

#include "bench/grid.h"
#include "experiments/table.h"
#include "stats/stats.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();
  experiments::ExperimentRunner runner(config);

  const auto methods = PaperTable2Methods(config.out_channels);
  const std::vector<models::ModelKind> kinds{models::ModelKind::kMoment,
                                             models::ModelKind::kVit};
  auto grid = RunGrid(&runner, runner.Datasets(), kinds, methods);

  for (models::ModelKind kind : kinds) {
    // Datasets where every method completed on every seed.
    std::vector<std::string> usable;
    for (const auto& spec : runner.Datasets()) {
      bool all = true;
      for (const auto& m : methods) {
        if (!grid.at({spec.name, kind, m.label}).AllCompleted()) all = false;
      }
      if (all) usable.push_back(spec.name);
    }
    // Per-method samples: one accuracy per (dataset, seed) pair, pooled —
    // the paper's aggregate heatmap compares methods across the whole
    // benchmark, so between-dataset variance is part of each sample.
    std::vector<std::vector<double>> samples(methods.size());
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      for (const auto& name : usable) {
        const auto& cell = grid.at({name, kind, methods[mi].label});
        for (const auto& record : cell.seeds) {
          samples[mi].push_back(record.measured->test_accuracy);
        }
      }
    }
    auto pvals = stats::PairwisePValueMatrix(samples);

    std::vector<std::string> header{"Method"};
    for (const auto& m : methods) header.push_back(m.label);
    experiments::Table table(header);
    double min_p = 1.0;
    double min_p_static = 1.0;  // excluding the gradient-trained lcomb pair
    auto is_learnable = [&](size_t idx) {
      return methods[idx].label.rfind("lcomb", 0) == 0;
    };
    for (size_t i = 0; i < methods.size(); ++i) {
      std::vector<std::string> row{methods[i].label};
      for (size_t j = 0; j < methods.size(); ++j) {
        row.push_back(std::isnan(pvals[i][j])
                          ? "-"
                          : experiments::FormatDouble(pvals[i][j], 2));
        if (i != j && !std::isnan(pvals[i][j])) {
          min_p = std::min(min_p, pvals[i][j]);
          if (!is_learnable(i) && !is_learnable(j)) {
            min_p_static = std::min(min_p_static, pvals[i][j]);
          }
        }
      }
      table.AddRow(std::move(row));
    }
    std::printf(
        "Figure 5%s: pairwise Welch p-values for %s over %zu datasets "
        "(p ~ 1 = methods statistically alike)\n\n%sminimum off-diagonal "
        "p-value: %.2f (paper: %s); among head-only + static adapters: %.2f\n",
        kind == models::ModelKind::kMoment ? "a" : "b",
        models::ModelKindName(kind), usable.size(), table.ToString().c_str(),
        min_p, kind == models::ModelKind::kMoment ? "0.46" : "0.25",
        min_p_static);

    // Omnibus Friedman rank test over the usable datasets (extension: the
    // standard TSC significance companion to the pairwise heatmap).
    std::vector<std::vector<double>> per_dataset;
    for (const auto& name : usable) {
      std::vector<double> row;
      for (const auto& m : methods) {
        row.push_back(grid.at({name, kind, m.label}).MeanAccuracy());
      }
      per_dataset.push_back(std::move(row));
    }
    if (auto friedman = stats::FriedmanTest(per_dataset); friedman.ok()) {
      auto cd = stats::NemenyiCriticalDifference(
          static_cast<int64_t>(methods.size()),
          static_cast<int64_t>(per_dataset.size()));
      std::printf(
          "Friedman test: chi2 = %.2f (df %.0f), p = %.3f%s; Nemenyi CD at "
          "alpha=0.05: %.2f\n\n",
          friedman->chi_square, friedman->degrees_of_freedom,
          friedman->p_value,
          friedman->p_value < 0.05 ? " (methods differ somewhere)"
                                   : " (no significant overall difference)",
          cd.ok() ? *cd : 0.0);
    }
    const std::string csv = BenchOutputDir() +
                            (kind == models::ModelKind::kMoment
                                 ? "/fig5a_pvalues_moment.csv"
                                 : "/fig5b_pvalues_vit.csv");
    auto io = table.WriteCsv(csv);
    if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
