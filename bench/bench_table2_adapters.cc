// Reproduces Table 2 of the paper: accuracy of MOMENT and ViT with each
// adapter configuration (head-only baseline + PCA / SVD / Rand_Proj / VAR /
// lcomb / lcomb_top_k at D' = 5), mean +- std over seeds, with COM/TO
// verdicts where the simulated paper-scale run would not complete.

#include <cstdio>

#include "bench/grid.h"
#include "experiments/table.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();
  experiments::ExperimentRunner runner(config);

  const auto methods = PaperTable2Methods(config.out_channels);
  const std::vector<models::ModelKind> kinds{models::ModelKind::kMoment,
                                             models::ModelKind::kVit};
  auto grid = RunGrid(&runner, runner.Datasets(), kinds, methods);

  std::vector<std::string> header{"Dataset", "Model"};
  for (const auto& m : methods) header.push_back(m.label);
  experiments::Table table(header);
  for (const auto& spec : runner.Datasets()) {
    for (models::ModelKind kind : kinds) {
      std::vector<std::string> row{spec.name, models::ModelKindName(kind)};
      for (const auto& m : methods) {
        row.push_back(grid.at({spec.name, kind, m.label}).Cell());
      }
      table.AddRow(std::move(row));
    }
  }
  std::printf(
      "Table 2: adapter comparison at D' = %lld (accuracy mean+-std over %lld "
      "seeds; COM/TO = simulated V100 verdict at paper scale)\n\n%s\n",
      static_cast<long long>(config.out_channels),
      static_cast<long long>(config.num_seeds), table.ToString().c_str());
  auto io = table.WriteCsv(BenchOutputDir() + "/table2_adapters.csv");
  if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());

  // Fit-on-GPU counts with lcomb (Section 4's 2.4x / 4.5x claim).
  for (models::ModelKind kind : kinds) {
    int fit = 0;
    for (const auto& spec : runner.Datasets()) {
      if (grid.at({spec.name, kind, "lcomb"}).AllCompleted()) ++fit;
    }
    std::printf("%s + lcomb fine-tunes %d/%zu datasets on the simulated V100 "
                "(paper: %s)\n",
                models::ModelKindName(kind), fit, runner.Datasets().size(),
                kind == models::ModelKind::kVit ? "12/12" : "9/12");
  }
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
