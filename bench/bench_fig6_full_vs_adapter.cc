// Reproduces Figure 6 (Appendix C.5): full fine-tuning vs adapter+head
// fine-tuning for the lcomb adapter, per dataset, for both foundation models.
// Also reports the fit-on-GPU counts behind Section 4's 2.4x / 4.5x claim.

#include <cstdio>

#include "bench/grid.h"
#include "experiments/table.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();
  experiments::ExperimentRunner runner(config);

  // The adapter+head method keeps Table 2's "lcomb" label so the shared run
  // cache is reused across binaries.
  MethodSpec adapter_head =
      AdapterMethod(core::AdapterKind::kLcomb, config.out_channels);
  MethodSpec full_ft =
      AdapterMethod(core::AdapterKind::kLcomb, config.out_channels);
  full_ft.label = "lcomb_full_ft";
  full_ft.strategy = finetune::Strategy::kFullFineTune;

  const std::vector<models::ModelKind> kinds{models::ModelKind::kMoment,
                                             models::ModelKind::kVit};
  auto grid =
      RunGrid(&runner, runner.Datasets(), kinds, {adapter_head, full_ft});

  experiments::Table table(
      {"Dataset", "Model", "lcomb adapter+head", "lcomb full fine-tune"});
  for (const auto& spec : runner.Datasets()) {
    for (models::ModelKind kind : kinds) {
      table.AddRow({spec.name, models::ModelKindName(kind),
                    grid.at({spec.name, kind, adapter_head.label}).Cell(),
                    grid.at({spec.name, kind, full_ft.label}).Cell()});
    }
  }
  std::printf("Figure 6: full fine-tuning vs adapter+head for lcomb\n\n%s\n",
              table.ToString().c_str());
  auto io = table.WriteCsv(BenchOutputDir() + "/fig6_full_vs_adapter.csv");
  if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());

  for (models::ModelKind kind : kinds) {
    int adapter_fit = 0, full_fit = 0;
    for (const auto& spec : runner.Datasets()) {
      if (grid.at({spec.name, kind, adapter_head.label}).AllCompleted()) {
        ++adapter_fit;
      }
      if (grid.at({spec.name, kind, full_ft.label}).AllCompleted()) {
        ++full_fit;
      }
    }
    std::printf(
        "%s: lcomb adapter+head fits %d/%zu datasets, lcomb full FT fits "
        "%d/%zu\n",
        models::ModelKindName(kind), adapter_fit, runner.Datasets().size(),
        full_fit, runner.Datasets().size());
  }
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
