// Reproduces Table 1 of the paper: accuracy of ViT and MOMENT under *full
// fine-tuning without an adapter* on the 12 UEA datasets. At paper scale most
// cells die with COM (CUDA out of memory) or TO (2-hour timeout) on a
// V100-32GB; our cost model reproduces those verdicts, and the cells that
// survive are trained for real on the scaled CPU models.

#include <cstdio>

#include "bench/grid.h"
#include "experiments/table.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();
  experiments::ExperimentRunner runner(config);

  MethodSpec full_ft;
  full_ft.label = "full_ft_no_adapter";
  full_ft.strategy = finetune::Strategy::kFullFineTune;

  const std::vector<models::ModelKind> kinds{models::ModelKind::kVit,
                                             models::ModelKind::kMoment};
  auto grid = RunGrid(&runner, runner.Datasets(), kinds, {full_ft});

  experiments::Table table({"Model", "Duck", "Face", "Finger", "Hand", "Heart",
                            "Insect", "Vowels", "Motor", "NATOPS", "PEMS",
                            "Phoneme", "SpokeA"});
  for (models::ModelKind kind : kinds) {
    std::vector<std::string> row{models::ModelKindName(kind)};
    for (const auto& spec : runner.Datasets()) {
      row.push_back(
          grid.at({spec.name, kind, full_ft.label}).Cell());
    }
    table.AddRow(std::move(row));
  }
  std::printf(
      "Table 1: full fine-tuning without adapter (paper-scale verdicts; "
      "accuracies from the scaled models where the simulated V100 run "
      "completes)\n\n%s\n",
      table.ToString().c_str());
  auto io = table.WriteCsv(BenchOutputDir() + "/table1_full_ft.csv");
  if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());

  // Headline counts quoted in Section 4.
  int vit_fit = 0, moment_fit = 0;
  for (const auto& spec : runner.Datasets()) {
    if (grid.at({spec.name, models::ModelKind::kVit, full_ft.label})
            .AllCompleted()) {
      ++vit_fit;
    }
    if (grid.at({spec.name, models::ModelKind::kMoment, full_ft.label})
            .AllCompleted()) {
      ++moment_fit;
    }
  }
  std::printf(
      "Datasets that complete full fine-tuning on the simulated V100: "
      "ViT %d/%zu (paper: 5/12), MOMENT %d/%zu (paper: 2/12)\n",
      vit_fit, runner.Datasets().size(), moment_fit, runner.Datasets().size());
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
