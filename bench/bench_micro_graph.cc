// Graph-mode micro-benchmark: the encoder forward interpreted from the
// captured dataflow IR (fused eltwise loops + planned slab reuse) against the
// same forward run eagerly. The paired CI gate (tools/bench_compare.py)
// requires BM_EncoderForwardGraph to be at least 10% faster than
// BM_EncoderForwardEager and to not allocate a higher peak than it — the
// whole point of the IR is fewer passes over memory and a smaller activation
// footprint, and both claims are checked on every PR.
//
// Each benchmark reports a `peak_bytes` counter: the BufferPool high-water
// delta of one encoder forward, measured outside the timed loop.

#include <benchmark/benchmark.h>

#include "graph/executor.h"
#include "memory/buffer_pool.h"
#include "models/moment.h"
#include "models/vit.h"
#include "simd/dispatch.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

constexpr int64_t kBatch = 4;
constexpr int64_t kSteps = 32;
constexpr int64_t kChannels = 8;

// Peak pool bytes of one `fn()` call, measured after a warmup call so
// lazily-built state (graph capture, pool freelists) is excluded.
template <typename Fn>
double MeasurePeakBytes(const Fn& fn) {
  auto& pool = memory::BufferPool::Instance();
  fn();  // warm caches and freelists
  const uint64_t before = pool.Snapshot().live_bytes;
  pool.ResetPeak();
  fn();
  const uint64_t peak = pool.Snapshot().peak_live_bytes;
  return static_cast<double>(peak - before);
}

void BM_EncoderForwardEager(benchmark::State& state) {
  Rng rng(1);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({kBatch, kSteps, kChannels}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  graph::ScopedGraphMode mode(false);
  ag::NoGradGuard guard;
  const auto fwd = [&] {
    ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);
    benchmark::DoNotOptimize(emb.value().data());
  };
  state.counters["peak_bytes"] = MeasurePeakBytes(fwd);
  for (auto _ : state) fwd();
}
BENCHMARK(BM_EncoderForwardEager);

void BM_EncoderForwardGraph(benchmark::State& state) {
  Rng rng(1);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({kBatch, kSteps, kChannels}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  graph::ScopedGraphMode mode(true);
  ag::NoGradGuard guard;
  const auto fwd = [&] {
    ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);
    benchmark::DoNotOptimize(emb.value().data());
  };
  // The first call captures and compiles; MeasurePeakBytes warms past it so
  // both the counter and the timed loop see steady-state replay.
  state.counters["peak_bytes"] = MeasurePeakBytes(fwd);
  for (auto _ : state) fwd();
}
BENCHMARK(BM_EncoderForwardGraph);

// Quantized-inference pair: the same frozen encoder forward at bench scale
// (MomentSmallConfig, d_model 64 / d_hidden 128 — the test config's d=16
// matmuls are too small for quantization to pay for its per-row activation
// pass) in fp32 against int8+SIMD. The paired CI gate requires
// BM_EncoderForwardInt8 <= 0.67x BM_EncoderForwardFp32 (>= 1.5x speedup).
constexpr int64_t kQuantSteps = 64;

void BM_EncoderForwardFp32(benchmark::State& state) {
  Rng rng(3);
  models::MomentModel model(models::MomentSmallConfig(), &rng);
  Tensor x = Tensor::RandN({kBatch, kQuantSteps, kChannels}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  graph::ScopedGraphMode mode(false);
  ag::NoGradGuard guard;
  const auto fwd = [&] {
    ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);
    benchmark::DoNotOptimize(emb.value().data());
  };
  state.counters["peak_bytes"] = MeasurePeakBytes(fwd);
  for (auto _ : state) fwd();
}
BENCHMARK(BM_EncoderForwardFp32);

void BM_EncoderForwardInt8(benchmark::State& state) {
  Rng rng(3);
  models::MomentModel model(models::MomentSmallConfig(), &rng);
  Tensor x = Tensor::RandN({kBatch, kQuantSteps, kChannels}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  simd::ScopedQuantMode quant(true);
  simd::ScopedSimdMode simd_on(true);
  ag::NoGradGuard guard;
  model.PrepareQuantized();  // scales computed once, as at checkpoint load
  const auto fwd = [&] {
    ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);
    benchmark::DoNotOptimize(emb.value().data());
  };
  state.counters["peak_bytes"] = MeasurePeakBytes(fwd);
  for (auto _ : state) fwd();
}
BENCHMARK(BM_EncoderForwardInt8);

void BM_VitForwardEager(benchmark::State& state) {
  Rng rng(2);
  models::VitModel model(models::VitTestConfig(), &rng);
  Tensor x = Tensor::RandN({kBatch, kSteps, kChannels}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  graph::ScopedGraphMode mode(false);
  ag::NoGradGuard guard;
  const auto fwd = [&] {
    ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);
    benchmark::DoNotOptimize(emb.value().data());
  };
  state.counters["peak_bytes"] = MeasurePeakBytes(fwd);
  for (auto _ : state) fwd();
}
BENCHMARK(BM_VitForwardEager);

void BM_VitForwardGraph(benchmark::State& state) {
  Rng rng(2);
  models::VitModel model(models::VitTestConfig(), &rng);
  Tensor x = Tensor::RandN({kBatch, kSteps, kChannels}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  graph::ScopedGraphMode mode(true);
  ag::NoGradGuard guard;
  const auto fwd = [&] {
    ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);
    benchmark::DoNotOptimize(emb.value().data());
  };
  state.counters["peak_bytes"] = MeasurePeakBytes(fwd);
  for (auto _ : state) fwd();
}
BENCHMARK(BM_VitForwardGraph);

}  // namespace
}  // namespace tsfm

BENCHMARK_MAIN();
