// Reproduces Figure 1: running time of each fine-tuning configuration,
// averaged across the 12 datasets, for (a) MOMENT and (b) ViT. Reports both
// the simulated paper-scale V100 seconds (the quantity Figure 1 plots) and
// the measured wall-clock of our scaled CPU runs — the *shape* must agree:
// static adapters are roughly an order of magnitude faster than no-adapter
// for MOMENT, ~2x for ViT, and lcomb is as slow as no-adapter.

#include <cmath>
#include <cstdio>

#include "bench/grid.h"
#include "experiments/table.h"
#include "stats/stats.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();
  experiments::ExperimentRunner runner(config);

  const auto methods = PaperTable2Methods(config.out_channels);
  const std::vector<models::ModelKind> kinds{models::ModelKind::kMoment,
                                             models::ModelKind::kVit};
  auto grid = RunGrid(&runner, runner.Datasets(), kinds, methods);

  for (models::ModelKind kind : kinds) {
    experiments::Table table({"Method", "SimulatedV100Seconds(avg)",
                              "MeasuredScaledSeconds(avg)",
                              "SpeedupVsNoAdapter(sim)"});
    // Baseline: head-only without adapter.
    std::vector<double> base_sim;
    for (const auto& spec : runner.Datasets()) {
      base_sim.push_back(grid.at({spec.name, kind, "no_adapter"})
                             .MeanSimulatedSeconds());
    }
    const double base = stats::Mean(base_sim);
    for (const auto& m : methods) {
      std::vector<double> sim, measured;
      for (const auto& spec : runner.Datasets()) {
        const auto& cell = grid.at({spec.name, kind, m.label});
        sim.push_back(cell.MeanSimulatedSeconds());
        const double s = cell.MeanMeasuredSeconds();
        if (!std::isnan(s)) measured.push_back(s);
      }
      const double sim_mean = stats::Mean(sim);
      table.AddRow({m.label, experiments::FormatDouble(sim_mean, 1),
                    experiments::FormatDouble(stats::Mean(measured), 2),
                    experiments::FormatDouble(base / sim_mean, 2) + "x"});
    }
    std::printf("Figure 1%s: running time for %s (averaged across datasets)\n\n%s\n",
                kind == models::ModelKind::kMoment ? "a" : "b",
                models::ModelKindName(kind), table.ToString().c_str());
    const std::string csv =
        BenchOutputDir() + (kind == models::ModelKind::kMoment
                                ? "/fig1a_runtime_moment.csv"
                                : "/fig1b_runtime_vit.csv");
    auto io = table.WriteCsv(csv);
    if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
