// Ablation for the paper's Section-4 observation that "the intrinsic
// dimension is dataset-dependent" and that more complex adapter
// configurations are needed in general: our synthetic generator *controls*
// the intrinsic channel dimension (latent_dim), so the interaction between
// D' and the data's latent structure is directly measurable. Two forces
// compete: components beyond the class-signal subspace add noise that the
// encoder's channel-mean pooling cannot ignore (accuracy *drops* as D'
// grows past the useful rank — strongest when latent_dim is small), while
// too-small D' discards class signal once the latent dimension is large.
// The optimal D' therefore depends on the dataset, which is exactly the
// paper's point.

#include <cstdio>

#include "bench/grid.h"
#include "core/pca_adapter.h"
#include "data/uea_like.h"
#include "experiments/table.h"
#include "finetune/finetune.h"
#include "models/pretrained.h"
#include "stats/stats.h"

namespace tsfm::bench {
namespace {

int Main() {
  models::PretrainOptions pretrain;
  pretrain.corpus_size = 256;
  pretrain.epochs = 2;
  auto model = models::LoadOrPretrain(models::ModelKind::kVit,
                                      models::VitSmallConfig(), pretrain,
                                      "checkpoints/ViT_fast.ckpt");
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  experiments::Table table(
      {"LatentDim", "D'=2", "D'=4", "D'=8", "ExplainedVar(D'=2)"});
  for (int64_t latent : {2ll, 4ll, 8ll}) {
    // 4-class problem, 24 observed channels, controlled intrinsic dimension.
    data::UeaDatasetSpec spec{"intrinsic_" + std::to_string(latent),
                              "i" + std::to_string(latent),
                              96, 64, 24, 48, 4, latent};
    std::vector<std::string> row{std::to_string(latent)};
    double explained_at_2 = 0.0;
    for (int64_t dprime : {2ll, 4ll, 8ll}) {
      std::vector<double> accs;
      for (uint64_t seed = 0; seed < 2; ++seed) {
        auto pair = data::GenerateUeaLike(spec, seed, data::GeneratorCaps{});
        core::AdapterOptions options;
        options.out_channels = dprime;
        core::PcaAdapter pca(options);
        finetune::FineTuneOptions ft;
        ft.strategy = finetune::Strategy::kAdapterPlusHead;
        ft.head_epochs = 30;
        ft.seed = seed;
        auto result = finetune::FineTune(model->get(), &pca, pair.train,
                                         pair.test, ft);
        if (!result.ok()) {
          std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
          return 1;
        }
        accs.push_back(result->test_accuracy);
        if (dprime == 2 && seed == 0) {
          explained_at_2 = pca.explained_variance_ratio();
        }
      }
      row.push_back(stats::FormatMeanStd(accs));
    }
    row.push_back(experiments::FormatDouble(explained_at_2, 2));
    table.AddRow(std::move(row));
  }
  std::printf(
      "Ablation: PCA accuracy vs the data's intrinsic channel dimension\n"
      "(24 observed channels; the best D' tracks the latent structure -- "
      "components beyond the useful rank add pooled noise, too few discard "
      "signal -- i.e. the paper's 'intrinsic dimension is dataset-"
      "dependent')\n\n%s\n",
      table.ToString().c_str());
  auto io = table.WriteCsv(BenchOutputDir() + "/ablation_intrinsic_dim.csv");
  if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
