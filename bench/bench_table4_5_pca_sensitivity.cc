// Reproduces Tables 4 and 5 (Appendix C.1): sensitivity of the PCA adapter to
// its hyper-parameters — plain PCA, Scaled PCA (standardized columns), and
// Patch-PCA with window sizes 8 and 16 — for MOMENT (Table 4) and ViT
// (Table 5).

#include <cstdio>

#include "bench/grid.h"
#include "experiments/table.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();
  experiments::ExperimentRunner runner(config);

  const auto methods = PcaSensitivityMethods(config.out_channels);
  const std::vector<models::ModelKind> kinds{models::ModelKind::kMoment,
                                             models::ModelKind::kVit};
  auto grid = RunGrid(&runner, runner.Datasets(), kinds, methods);

  for (models::ModelKind kind : kinds) {
    std::vector<std::string> header{"Dataset"};
    for (const auto& m : methods) header.push_back(m.label);
    experiments::Table table(header);
    for (const auto& spec : runner.Datasets()) {
      std::vector<std::string> row{spec.name};
      for (const auto& m : methods) {
        row.push_back(grid.at({spec.name, kind, m.label}).Cell());
      }
      table.AddRow(std::move(row));
    }
    std::printf("Table %s: PCA hyper-parameter sensitivity for %s\n\n%s\n",
                kind == models::ModelKind::kMoment ? "4" : "5",
                models::ModelKindName(kind), table.ToString().c_str());
    const std::string csv =
        BenchOutputDir() + (kind == models::ModelKind::kMoment
                                ? "/table4_pca_moment.csv"
                                : "/table5_pca_vit.csv");
    auto io = table.WriteCsv(csv);
    if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
