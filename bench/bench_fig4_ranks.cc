// Reproduces Figure 4 (Appendix C.3): average rank of each adapter across the
// 12 datasets for MOMENT (a) and ViT (b). Lower rank = better accuracy. The
// paper finds PCA best on both models and lcomb worst for MOMENT.

#include <cmath>
#include <cstdio>

#include "bench/grid.h"
#include "experiments/table.h"
#include "stats/stats.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();
  experiments::ExperimentRunner runner(config);

  // Rank the five adapter families of Figure 4 (PCA, SVD, Rand_Proj, VAR,
  // lcomb).
  std::vector<MethodSpec> methods{
      AdapterMethod(core::AdapterKind::kPca, config.out_channels),
      AdapterMethod(core::AdapterKind::kSvd, config.out_channels),
      AdapterMethod(core::AdapterKind::kRandProj, config.out_channels),
      AdapterMethod(core::AdapterKind::kVar, config.out_channels),
      AdapterMethod(core::AdapterKind::kLcomb, config.out_channels)};
  const std::vector<models::ModelKind> kinds{models::ModelKind::kMoment,
                                             models::ModelKind::kVit};
  auto grid = RunGrid(&runner, runner.Datasets(), kinds, methods);

  for (models::ModelKind kind : kinds) {
    // Build per-dataset accuracy vectors; datasets where any method has no
    // completed accuracy (COM/TO) are skipped for ranking, matching how the
    // paper aggregates only finished runs.
    std::vector<std::vector<double>> per_dataset;
    for (const auto& spec : runner.Datasets()) {
      std::vector<double> row;
      bool usable = true;
      for (const auto& m : methods) {
        const double acc = grid.at({spec.name, kind, m.label}).MeanAccuracy();
        if (std::isnan(acc)) usable = false;
        row.push_back(acc);
      }
      if (usable) per_dataset.push_back(std::move(row));
    }
    const std::vector<double> ranks = stats::AverageRanks(per_dataset);
    experiments::Table table({"Adapter", "AverageRank"});
    for (size_t i = 0; i < methods.size(); ++i) {
      table.AddRow({methods[i].label,
                    experiments::FormatDouble(ranks.empty() ? 0.0 : ranks[i], 2)});
    }
    std::printf(
        "Figure 4%s: adapter average rank for %s over %zu rankable datasets "
        "(lower is better)\n\n%s\n",
        kind == models::ModelKind::kMoment ? "a" : "b",
        models::ModelKindName(kind), per_dataset.size(),
        table.ToString().c_str());
    const std::string csv = BenchOutputDir() +
                            (kind == models::ModelKind::kMoment
                                 ? "/fig4a_ranks_moment.csv"
                                 : "/fig4b_ranks_vit.csv");
    auto io = table.WriteCsv(csv);
    if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
