// Micro-benchmarks of the tensor and linear-algebra kernels everything else
// is built on: matmul, softmax, layer-norm math, eigendecomposition and
// truncated SVD. Run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "autograd/ops.h"
#include "common/rng.h"
#include "data/uea_like.h"
#include "finetune/classifier.h"
#include "linalg/linalg.h"
#include "memory/buffer_pool.h"
#include "models/head.h"
#include "obs/metrics.h"
#include "obs/rolling.h"
#include "optim/optim.h"
#include "pipeline/session.h"
#include "runtime/thread_pool.h"
#include "simd/dispatch.h"
#include "simd/quant.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

void BM_MatMulSquare(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandN({n, n}, &rng);
  Tensor b = Tensor::RandN({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulSquare)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_MatMulBatched(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::RandN({batch, 32, 64}, &rng);
  Tensor b = Tensor::RandN({batch, 64, 32}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_MatMulBatched)->Arg(4)->Arg(16)->Arg(64);

void BM_Softmax(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(3);
  Tensor t = Tensor::RandN({rows, 128}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(t));
  }
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(1024);

// SIMD-mode row kernels against the scalar fp32 kernels they replace:
// Arg(0) = scalar mode, Arg(1) = SIMD mode. Both are watched by
// bench_compare.py, so a regression in either dispatch path trips CI.
void BM_SoftmaxRow(benchmark::State& state) {
  simd::ScopedSimdMode mode(state.range(0) != 0);
  Rng rng(31);
  Tensor t = Tensor::RandN({256, 256}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(t));
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_SoftmaxRow)->Arg(0)->Arg(1);

void BM_GeluRow(benchmark::State& state) {
  simd::ScopedSimdMode mode(state.range(0) != 0);
  Rng rng(32);
  Tensor t = Tensor::RandN({256, 256}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gelu(t));
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_GeluRow)->Arg(0)->Arg(1);

// Int8 dynamically-quantized matmul (quantize activations per row, int32
// accumulate, dequantize) against nothing but itself over sizes — the
// fp32-vs-int8 end-to-end comparison lives in bench_micro_graph.cc as a
// paired gate.
void BM_QuantMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(33);
  Tensor a = Tensor::RandN({n, n}, &rng);
  Tensor w = Tensor::RandN({n, n}, &rng);
  const simd::QuantizedMatrix q = simd::QuantizeWeight(w.data(), n, n);
  Tensor c = Tensor::Empty({n, n});
  for (auto _ : state) {
    simd::QuantMatMul(a.data(), n, q, c.mutable_data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_QuantMatMul)->Arg(64)->Arg(256);

void BM_BroadcastAdd(benchmark::State& state) {
  Rng rng(4);
  Tensor a = Tensor::RandN({64, 128, 64}, &rng);
  Tensor bias = Tensor::RandN({64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(a, bias));
  }
}
BENCHMARK(BM_BroadcastAdd);

void BM_JacobiEigen(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(5);
  Tensor b = Tensor::RandN({d, d}, &rng);
  Tensor a = MatMul(TransposeLast2(b), b);
  for (auto _ : state) {
    auto r = SymmetricEigen(a);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(16)->Arg(64)->Arg(128);

void BM_TopKEigenSubspace(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(6);
  Tensor b = Tensor::RandN({d, 16}, &rng);
  Tensor a = MatMul(b, TransposeLast2(b));
  for (auto _ : state) {
    auto r = TopKEigen(a, 5);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_TopKEigenSubspace)->Arg(256)->Arg(512)->Arg(1024);

void BM_TruncatedSvd(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(7);
  Tensor x = Tensor::RandN({512, d}, &rng);
  for (auto _ : state) {
    auto r = TruncatedSvd(x, 5);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_TruncatedSvd)->Arg(32)->Arg(128)->Arg(256);

void BM_AutogradBackwardMlp(benchmark::State& state) {
  // Forward+backward through a 2-layer MLP expression: measures tape
  // overhead relative to raw kernels.
  Rng rng(8);
  Tensor x = Tensor::RandN({32, 64}, &rng);
  Tensor w1 = Tensor::RandN({64, 128}, &rng, 0.1f);
  Tensor w2 = Tensor::RandN({128, 10}, &rng, 0.1f);
  std::vector<int64_t> labels(32);
  for (int64_t i = 0; i < 32; ++i) labels[static_cast<size_t>(i)] = i % 10;
  for (auto _ : state) {
    ag::Var vw1(w1, true), vw2(w2, true);
    ag::Var h = ag::Gelu(ag::MatMul(ag::Constant(x), vw1));
    ag::Var logits = ag::MatMul(h, vw2);
    ag::Var loss = ag::CrossEntropy(logits, labels);
    loss.Backward();
    benchmark::DoNotOptimize(vw1.grad());
  }
}
BENCHMARK(BM_AutogradBackwardMlp);

// Allocation pressure of the fine-tune inner loop: one head-training step
// (batch selection + forward + backward + AdamW) per iteration, the hot loop
// of the embed-once path. Arg 1 runs with the BufferPool enabled, Arg 0 with
// it disabled — the in-process equivalent of TSFM_DISABLE_POOL=1 — so one
// JSON report shows exactly what pooling saves. Counters:
//   acquires_per_iter     tensor-buffer requests per step
//   heap_allocs_per_iter  requests that reached new[] per step
//   peak_pool_bytes       allocator high-water mark over the timed run
void BM_FineTuneInnerLoopAlloc(benchmark::State& state) {
  memory::BufferPool& pool = memory::BufferPool::Instance();
  const bool ambient_enabled = pool.enabled();
  const bool pool_on = state.range(0) != 0;
  pool.SetEnabledForTesting(pool_on);
  pool.Trim();  // both configurations start from empty freelists

  Rng rng(9);
  const int64_t n = 256, e = 64, classes = 6, bs = 32;
  Tensor embeddings = Tensor::RandN({n, e}, &rng);
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % classes;
  }
  models::ClassificationHead head(e, classes, &rng);
  optim::AdamW opt(head.Parameters(), 5e-2f, 0.9f, 0.999f, 1e-8f, 1e-4f);

  std::vector<int64_t> idx(static_cast<size_t>(bs));
  int64_t step = 0;
  auto run_step = [&] {
    const int64_t start = (step++ * bs) % n;
    std::vector<int64_t> yb(static_cast<size_t>(bs));
    for (int64_t i = 0; i < bs; ++i) {
      idx[static_cast<size_t>(i)] = start + i;
      yb[static_cast<size_t>(i)] = labels[static_cast<size_t>(start + i)];
    }
    Tensor xb = TakeRows(embeddings, idx);
    ag::Var logits = head.Forward(ag::Constant(xb));
    ag::Var loss = ag::CrossEntropy(logits, yb);
    loss.Backward();
    opt.Step();
    opt.ZeroGrad();
    head.ZeroGrad();
    benchmark::DoNotOptimize(loss.value()[0]);
  };
  run_step();  // warm-up: pooled steady state, not cold-cache misses

  pool.ResetPeak();
  const memory::PoolStats s0 = pool.Snapshot();
  for (auto _ : state) {
    run_step();
  }
  const memory::PoolStats s1 = pool.Snapshot();

  const double iters = static_cast<double>(state.iterations());
  state.counters["pool_enabled"] = pool_on ? 1 : 0;
  state.counters["acquires_per_iter"] =
      static_cast<double>(s1.acquires - s0.acquires) / iters;
  state.counters["heap_allocs_per_iter"] =
      static_cast<double>(s1.heap_allocs - s0.heap_allocs) / iters;
  state.counters["peak_pool_bytes"] =
      static_cast<double>(s1.peak_live_bytes);

  pool.SetEnabledForTesting(ambient_enabled);
}
BENCHMARK(BM_FineTuneInnerLoopAlloc)->Arg(1)->Arg(0);

// End-to-end serving latency through a fitted InferenceSession: normalize +
// adapter transform + frozen-encoder forward + head, on a test-scale ViT so
// the gate tracks the whole predict path, not one kernel. The fixture fits
// once per process and is shared across the single/batch variants.
struct PredictFixture {
  data::DatasetPair pair;
  finetune::TsfmClassifier classifier;
  std::shared_ptr<const pipeline::InferenceSession> session;
  Tensor one;      // (1, T, D)
  Tensor batch32;  // (32, T, D)
};

const PredictFixture& SharedPredictFixture() {
  static const PredictFixture* fixture = [] {
    data::UeaDatasetSpec spec{"bench_pred", "bp", 64, 40, 8, 32, 2, 3};
    auto pair = data::GenerateUeaLike(spec, 11, data::GeneratorCaps{});
    finetune::ClassifierConfig config;
    config.model_kind = models::ModelKind::kVit;
    config.model_config = models::VitTestConfig();
    config.pretrain.corpus_size = 48;
    config.pretrain.series_length = 32;
    config.pretrain.epochs = 1;
    config.finetune.head_epochs = 8;
    config.adapter_options.out_channels = 3;
    auto clf = finetune::TsfmClassifier::Create(config);
    if (!clf.ok()) {
      std::fprintf(stderr, "predict fixture: %s\n",
                   clf.status().ToString().c_str());
      std::abort();
    }
    if (auto s = clf->Fit(pair.train, &pair.test); !s.ok()) {
      std::fprintf(stderr, "predict fixture: %s\n", s.ToString().c_str());
      std::abort();
    }
    auto* f = new PredictFixture{std::move(pair), std::move(*clf), nullptr,
                                 Tensor(), Tensor()};
    f->session = f->classifier.session();
    f->one = Slice(f->pair.test.x, 0, 0, 1).Contiguous();
    f->batch32 = Slice(f->pair.test.x, 0, 0, 32).Contiguous();
    return f;
  }();
  return *fixture;
}

void BM_PredictSingle(benchmark::State& state) {
  const PredictFixture& f = SharedPredictFixture();
  for (auto _ : state) {
    auto label = f.session->Predict(f.one);
    benchmark::DoNotOptimize(label.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictSingle);

void BM_PredictBatch32(benchmark::State& state) {
  const PredictFixture& f = SharedPredictFixture();
  for (auto _ : state) {
    auto labels = f.session->PredictBatch(f.batch32);
    benchmark::DoNotOptimize(labels.ok());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_PredictBatch32);

// Cost of one live metrics scrape (Registry::RenderPrometheus) against a
// registry populated the way a busy server populates it: rolling serve
// instruments with labeled per-op histograms plus a spread of plain
// counters. This is the cost an operator pays per scrape interval; it must
// stay milliseconds-flat so a 1 s --follow loop is effectively free.
void BM_ServeMetricsScrape(benchmark::State& state) {
  auto& registry = obs::Registry::Instance();
  static const bool populated = [&registry] {
    Rng rng(5);
    auto* latency = registry.GetRollingHistogram(obs::LabeledName(
        "bench.scrape.latency", {{"model", "default"}, {"op", "classify"}}));
    auto* embed = registry.GetRollingHistogram(obs::LabeledName(
        "bench.scrape.latency", {{"model", "default"}, {"op", "embed"}}));
    auto* requests = registry.GetRollingCounter("bench.scrape.requests");
    for (int i = 0; i < 10000; ++i) {
      latency->Observe(0.001 + 0.0001 * (i % 50));
      embed->Observe(0.002 + 0.0001 * (i % 30));
      requests->Add(1);
    }
    for (int i = 0; i < 32; ++i) {
      registry.GetCounter("bench.scrape.counter_" + std::to_string(i))
          ->Add(static_cast<uint64_t>(i));
    }
    return true;
  }();
  benchmark::DoNotOptimize(populated);
  for (auto _ : state) {
    std::string text = registry.RenderPrometheus();
    benchmark::DoNotOptimize(text.data());
    state.counters["bytes"] = static_cast<double>(text.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeMetricsScrape);

// Parallel speedup of the 512^3 matmul across pool sizes. Registered last
// (and restoring the ambient thread count per run) so the pool-size sweep
// never bleeds into the single-configuration benchmarks above.
void BM_MatMulSquareThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  const int ambient = runtime::NumThreads();
  runtime::SetNumThreads(threads);
  Rng rng(1);
  Tensor a = Tensor::RandN({n, n}, &rng);
  Tensor b = Tensor::RandN({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.counters["threads"] = threads;
  runtime::SetNumThreads(ambient);
}
BENCHMARK(BM_MatMulSquareThreads)
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8});

}  // namespace
}  // namespace tsfm

BENCHMARK_MAIN();
