// Ablation: the paper fixes D' = 5 for Table 2 without sweeping it. This
// bench justifies (or challenges) that choice by sweeping the target channel
// count D' for the PCA adapter across a subset of datasets, reporting
// accuracy, PCA explained variance, measured wall-clock of the scaled runs
// and the simulated paper-scale V100 time.

#include <cstdio>

#include "bench/grid.h"
#include "core/pca_adapter.h"
#include "experiments/table.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();
  experiments::ExperimentRunner runner(config);

  std::vector<MethodSpec> methods;
  for (int64_t dprime : {2, 5, 10, 20}) {
    MethodSpec m = AdapterMethod(core::AdapterKind::kPca, dprime);
    m.label = "PCA_D" + std::to_string(dprime);
    methods.push_back(m);
  }
  // A representative spread of channel counts: medium (NATOPS 24),
  // high (Heartbeat 61), very high (PEMS-SF 963).
  experiments::ExperimentConfig subset = config;
  subset.dataset_filter = {"NATOPS", "Heartbeat", "PEMS-SF"};
  experiments::ExperimentRunner subset_runner(subset);

  const std::vector<models::ModelKind> kinds{models::ModelKind::kMoment};
  auto grid =
      RunGrid(&subset_runner, subset_runner.Datasets(), kinds, methods);

  experiments::Table table({"Dataset", "D'", "Accuracy", "MeasuredSeconds",
                            "SimulatedV100Seconds"});
  for (const auto& spec : subset_runner.Datasets()) {
    for (const auto& m : methods) {
      const auto& cell = grid.at({spec.name, models::ModelKind::kMoment,
                                  m.label});
      table.AddRow({spec.name, m.label.substr(5), cell.Cell(),
                    experiments::FormatDouble(cell.MeanMeasuredSeconds(), 2),
                    experiments::FormatDouble(cell.MeanSimulatedSeconds(), 1)});
    }
  }
  std::printf(
      "Ablation: PCA target dimension D' (accuracy vs cost; the paper fixes "
      "D'=5)\n\n%s\n",
      table.ToString().c_str());
  auto io = table.WriteCsv(BenchOutputDir() + "/ablation_dprime.csv");
  if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
