// Ablation micro-benchmark: foundation-model encoding cost as a function of
// the channel count D. Univariate TSFMs process each channel independently,
// so cost grows linearly in D — the bottleneck the paper's adapters remove by
// reducing D to D' = 5 up front.

#include <benchmark/benchmark.h>

#include "models/moment.h"
#include "models/vit.h"
#include "tensor/ops.h"

namespace tsfm {
namespace {

void BM_MomentEncodeVsChannels(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(1);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({4, 32, d}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  for (auto _ : state) {
    ag::NoGradGuard guard;
    ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);
    benchmark::DoNotOptimize(emb.value().data());
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_MomentEncodeVsChannels)->Arg(5)->Arg(20)->Arg(80);

void BM_VitEncodeVsChannels(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(2);
  models::VitModel model(models::VitTestConfig(), &rng);
  Tensor x = Tensor::RandN({4, 32, d}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  for (auto _ : state) {
    ag::NoGradGuard guard;
    ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);
    benchmark::DoNotOptimize(emb.value().data());
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_VitEncodeVsChannels)->Arg(5)->Arg(20)->Arg(80);

void BM_MomentTrainingStepVsChannels(benchmark::State& state) {
  // Forward + backward (the lcomb / full-FT inner loop cost).
  const int64_t d = state.range(0);
  Rng rng(3);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({4, 32, d}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  for (auto _ : state) {
    ag::Var input(x, /*requires_grad=*/true);
    ag::Var emb = model.EncodeChannels(input, ctx);
    ag::Var loss = ag::SumAll(ag::Square(emb));
    loss.Backward();
    model.ZeroGrad();
    benchmark::DoNotOptimize(input.grad());
  }
}
BENCHMARK(BM_MomentTrainingStepVsChannels)->Arg(5)->Arg(20);

void BM_NoGradSavesMemoryAndTime(benchmark::State& state) {
  // Encode with tape recording enabled (parameters require grad) — compare
  // against BM_MomentEncodeVsChannels to see the NoGradGuard win.
  Rng rng(4);
  models::MomentModel model(models::MomentTestConfig(), &rng);
  Tensor x = Tensor::RandN({4, 32, 20}, &rng);
  nn::ForwardContext ctx{false, nullptr};
  for (auto _ : state) {
    ag::Var emb = model.EncodeChannels(ag::Constant(x), ctx);  // tape built
    benchmark::DoNotOptimize(emb.value().data());
  }
}
BENCHMARK(BM_NoGradSavesMemoryAndTime);

}  // namespace
}  // namespace tsfm

BENCHMARK_MAIN();
