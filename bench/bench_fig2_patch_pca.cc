// Reproduces Figure 2 (Appendix C.1): per-dataset comparison of plain PCA
// against Patch-PCA (window 8 and 16) for both foundation models. The paper
// finds no consistent winner — the patch window behaves as a per-dataset
// hyper-parameter.

#include <cmath>
#include <cstdio>

#include "bench/grid.h"
#include "experiments/table.h"

namespace tsfm::bench {
namespace {

int Main() {
  experiments::ExperimentConfig config = experiments::ConfigFromEnv();
  experiments::ExperimentRunner runner(config);

  const auto methods = PcaSensitivityMethods(config.out_channels);
  const std::vector<models::ModelKind> kinds{models::ModelKind::kMoment,
                                             models::ModelKind::kVit};
  auto grid = RunGrid(&runner, runner.Datasets(), kinds, methods);

  experiments::Table table(
      {"Dataset", "Model", "PCA", "PatchPCA_8", "PatchPCA_16", "BestVariant"});
  int pca_wins = 0, patch_wins = 0;
  for (const auto& spec : runner.Datasets()) {
    for (models::ModelKind kind : kinds) {
      const double pca = grid.at({spec.name, kind, "PCA"}).MeanAccuracy();
      const double p8 =
          grid.at({spec.name, kind, "PatchPCA_8"}).MeanAccuracy();
      const double p16 =
          grid.at({spec.name, kind, "PatchPCA_16"}).MeanAccuracy();
      std::string best = "PCA";
      double best_acc = pca;
      if (!std::isnan(p8) && (std::isnan(best_acc) || p8 > best_acc)) {
        best = "PatchPCA_8";
        best_acc = p8;
      }
      if (!std::isnan(p16) && (std::isnan(best_acc) || p16 > best_acc)) {
        best = "PatchPCA_16";
        best_acc = p16;
      }
      (best == "PCA" ? pca_wins : patch_wins) += 1;
      table.AddRow({spec.name, models::ModelKindName(kind),
                    experiments::FormatDouble(pca),
                    experiments::FormatDouble(p8),
                    experiments::FormatDouble(p16), best});
    }
  }
  std::printf(
      "Figure 2: PCA vs Patch-PCA per dataset (no consistent winner is the "
      "paper's finding)\n\n%sPCA best in %d cells, a patch variant best in %d "
      "cells\n",
      table.ToString().c_str(), pca_wins, patch_wins);
  auto io = table.WriteCsv(BenchOutputDir() + "/fig2_patch_pca.csv");
  if (!io.ok()) std::fprintf(stderr, "csv: %s\n", io.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace tsfm::bench

int main() { return tsfm::bench::Main(); }
