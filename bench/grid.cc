#include "bench/grid.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "stats/stats.h"

namespace tsfm::bench {

namespace {

// On-disk record cache shared across bench binaries. One line per run:
// key|completed|test_acc|train_acc|total_s|adapter_s|verdict|sim_s|sim_peak
class RunCache {
 public:
  explicit RunCache(const experiments::ExperimentConfig& config) {
    std::ostringstream path;
    path << config.checkpoint_dir << "/grid_cache_"
         << (config.fast ? "fast" : "full") << ".txt";
    path_ = path.str();
    std::error_code ec;
    std::filesystem::create_directories(config.checkpoint_dir, ec);
    std::ifstream is(path_);
    std::string line;
    while (std::getline(is, line)) {
      const size_t sep = line.find('|');
      if (sep == std::string::npos) continue;
      entries_[line.substr(0, sep)] = line.substr(sep + 1);
    }
    std::fprintf(stderr, "[grid] run cache: %s (%zu entries)\n", path_.c_str(),
                 entries_.size());
  }

  static std::string Key(const experiments::ExperimentConfig& config,
                         const std::string& dataset, models::ModelKind kind,
                         const MethodSpec& method, int64_t seed) {
    std::ostringstream key;
    key << dataset << ";" << models::ModelKindName(kind) << ";"
        << method.label << ";" << finetune::StrategyName(method.strategy)
        << ";" << method.options.out_channels << ";seed" << seed << ";caps"
        << config.caps.max_train << "," << config.caps.max_test << ","
        << config.caps.max_length << "," << config.caps.max_channels;
    return key.str();
  }

  bool Lookup(const std::string& key, experiments::RunRecord* record) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    std::istringstream is(it->second);
    std::string field;
    auto next = [&]() {
      std::getline(is, field, '|');
      return field;
    };
    const bool completed = next() == "1";
    const double test_acc = std::atof(next().c_str());
    const double train_acc = std::atof(next().c_str());
    const double total_s = std::atof(next().c_str());
    const double adapter_s = std::atof(next().c_str());
    const std::string verdict = next();
    const double sim_s = std::atof(next().c_str());
    const double sim_peak = std::atof(next().c_str());
    record->estimate.total_seconds = sim_s;
    record->estimate.peak_memory_bytes = sim_peak;
    if (verdict == "COM") {
      record->estimate.verdict = resources::Verdict::kCudaOutOfMemory;
    } else if (verdict == "TO") {
      record->estimate.verdict = resources::Verdict::kTimeout;
    } else {
      record->estimate.verdict = resources::Verdict::kOk;
    }
    if (completed) {
      finetune::FineTuneResult measured;
      measured.test_accuracy = test_acc;
      measured.train_accuracy = train_acc;
      measured.total_seconds = total_s;
      measured.adapter_fit_seconds = adapter_s;
      record->measured = measured;
    }
    return true;
  }

  void Store(const std::string& key, const experiments::RunRecord& record) {
    std::ostringstream value;
    value.precision(17);  // round-trip doubles exactly
    if (record.completed()) {
      value << "1|" << record.measured->test_accuracy << "|"
            << record.measured->train_accuracy << "|"
            << record.measured->total_seconds << "|"
            << record.measured->adapter_fit_seconds;
    } else {
      value << "0|0|0|0|0";
    }
    value << "|" << resources::VerdictString(record.estimate.verdict) << "|"
          << record.estimate.total_seconds << "|"
          << record.estimate.peak_memory_bytes;
    entries_[key] = value.str();
    std::ofstream os(path_, std::ios::app);
    os << key << "|" << value.str() << "\n";
  }

 private:
  std::string path_;
  std::map<std::string, std::string> entries_;
};

}  // namespace

MethodSpec HeadOnlyMethod() {
  MethodSpec m;
  m.label = "no_adapter";
  m.strategy = finetune::Strategy::kHeadOnly;
  return m;
}

MethodSpec AdapterMethod(core::AdapterKind kind, int64_t out_channels) {
  MethodSpec m;
  m.adapter = kind;
  m.options.out_channels = out_channels;
  m.label = experiments::MethodLabel(m.adapter, m.options);
  m.strategy = finetune::Strategy::kAdapterPlusHead;
  return m;
}

std::vector<MethodSpec> PaperTable2Methods(int64_t out_channels) {
  std::vector<MethodSpec> methods;
  methods.push_back(HeadOnlyMethod());
  for (core::AdapterKind kind : core::AllAdapterKinds()) {
    methods.push_back(AdapterMethod(kind, out_channels));
  }
  return methods;
}

std::vector<MethodSpec> PcaSensitivityMethods(int64_t out_channels) {
  std::vector<MethodSpec> methods;
  methods.push_back(AdapterMethod(core::AdapterKind::kPca, out_channels));
  MethodSpec scaled = AdapterMethod(core::AdapterKind::kPca, out_channels);
  scaled.options.pca_scale = true;
  scaled.label = "ScaledPCA";
  methods.push_back(scaled);
  for (int64_t pws : {8, 16}) {
    MethodSpec patch = AdapterMethod(core::AdapterKind::kPca, out_channels);
    patch.options.pca_patch_window = pws;
    patch.label = "PatchPCA_" + std::to_string(pws);
    methods.push_back(patch);
  }
  return methods;
}

std::string CellResult::Cell() const {
  std::vector<double> accs;
  for (const auto& record : seeds) {
    if (!record.completed()) {
      return resources::VerdictString(record.estimate.verdict);
    }
    accs.push_back(record.measured->test_accuracy);
  }
  if (accs.empty()) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f+-%.3f", stats::Mean(accs),
                stats::SampleStd(accs));
  return buf;
}

double CellResult::MeanAccuracy() const {
  std::vector<double> accs;
  for (const auto& record : seeds) {
    if (record.completed()) accs.push_back(record.measured->test_accuracy);
  }
  if (accs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return stats::Mean(accs);
}

bool CellResult::AllCompleted() const {
  for (const auto& record : seeds) {
    if (!record.completed()) return false;
  }
  return !seeds.empty();
}

double CellResult::MeanMeasuredSeconds() const {
  std::vector<double> times;
  for (const auto& record : seeds) {
    if (record.completed()) times.push_back(record.measured->total_seconds);
  }
  if (times.empty()) return std::numeric_limits<double>::quiet_NaN();
  return stats::Mean(times);
}

double CellResult::MeanSimulatedSeconds() const {
  std::vector<double> times;
  for (const auto& record : seeds) {
    times.push_back(record.estimate.total_seconds);
  }
  if (times.empty()) return std::numeric_limits<double>::quiet_NaN();
  return stats::Mean(times);
}

std::map<GridKey, CellResult> RunGrid(
    experiments::ExperimentRunner* runner,
    const std::vector<data::UeaDatasetSpec>& datasets,
    const std::vector<models::ModelKind>& model_kinds,
    const std::vector<MethodSpec>& methods) {
  std::map<GridKey, CellResult> grid;
  RunCache cache(runner->config());
  const int64_t num_seeds = runner->config().num_seeds;
  for (const auto& dataset : datasets) {
    for (models::ModelKind kind : model_kinds) {
      for (const MethodSpec& method : methods) {
        CellResult cell;
        for (int64_t seed = 0; seed < num_seeds; ++seed) {
          const std::string key =
              RunCache::Key(runner->config(), dataset.name, kind, method, seed);
          experiments::RunRecord cached;
          cached.dataset = dataset.name;
          cached.model_kind = kind;
          cached.method = method.label;
          cached.seed = static_cast<uint64_t>(seed);
          if (cache.Lookup(key, &cached)) {
            cell.seeds.push_back(std::move(cached));
            continue;
          }
          experiments::RunSpec spec;
          spec.dataset = dataset.name;
          spec.model_kind = kind;
          spec.adapter = method.adapter;
          spec.adapter_options = method.options;
          spec.strategy = method.strategy;
          spec.seed = static_cast<uint64_t>(seed);
          auto record = runner->Run(spec);
          TSFM_CHECK(record.ok())
              << dataset.name << "/" << models::ModelKindName(kind) << "/"
              << method.label << ": " << record.status().ToString();
          cache.Store(key, *record);
          cell.seeds.push_back(std::move(*record));
        }
        std::fprintf(stderr, "[grid] %-22s %-6s %-12s -> %s\n",
                     dataset.name.c_str(), models::ModelKindName(kind),
                     method.label.c_str(), cell.Cell().c_str());
        grid.emplace(GridKey{dataset.name, kind, method.label},
                     std::move(cell));
      }
    }
  }
  return grid;
}

std::string BenchOutputDir() {
  if (const char* dir = std::getenv("TSFM_BENCH_OUT"); dir != nullptr) {
    return dir;
  }
  return ".";
}

}  // namespace tsfm::bench
