#!/bin/bash
# Runs every table/figure bench plus the micro-benchmarks, teeing a combined
# transcript. TSFM_BENCH_FAST=1 uses the CI-scale grid (2 seeds, capped data).
set -u
export TSFM_BENCH_FAST=${TSFM_BENCH_FAST:-1}
export TSFM_BENCH_OUT=${TSFM_BENCH_OUT:-bench_results}
mkdir -p "$TSFM_BENCH_OUT"
BINS="bench_table3_datasets bench_table2_adapters bench_table1_full_ft \
      bench_table4_5_pca_sensitivity bench_fig1_runtime bench_fig2_patch_pca \
      bench_fig3_lcomb_topk bench_fig4_ranks bench_fig5_pvalues \
      bench_fig6_full_vs_adapter bench_ablation_dprime"
for b in $BINS; do
  echo "================================================================"
  echo "== $b"
  echo "================================================================"
  ./build/bench/$b 2>/dev/null
done
for b in bench_micro_kernels bench_micro_adapters bench_micro_encoder; do
  echo "================================================================"
  echo "== $b"
  echo "================================================================"
  ./build/bench/$b --benchmark_min_time=0.05 \
    --benchmark_out="$TSFM_BENCH_OUT/BENCH_${b#bench_}.json" \
    --benchmark_out_format=json 2>/dev/null
done

# TSFM_BENCH_BASELINE=1 additionally refreshes the committed perf baseline
# that the CI bench-regression job compares PRs against. Commit the updated
# bench_results/BENCH_baseline.json alongside any intentional perf change.
if [ "${TSFM_BENCH_BASELINE:-0}" = "1" ]; then
  echo "================================================================"
  echo "== refreshing $TSFM_BENCH_OUT/BENCH_baseline.json"
  echo "================================================================"
  # TSFM_NUM_THREADS is pinned to match the CI bench-regression job so the
  # baseline and the gated candidate run measure the same configuration.
  TSFM_NUM_THREADS=2 ./build/bench/bench_micro_kernels \
    --benchmark_filter='BM_MatMulSquare|BM_FineTuneInnerLoopAlloc|BM_Predict|BM_SoftmaxRow|BM_GeluRow|BM_QuantMatMul' \
    --benchmark_min_time=0.1 \
    --benchmark_out="$TSFM_BENCH_OUT/BENCH_baseline.json" \
    --benchmark_out_format=json 2>/dev/null
  # The encoder fp32/int8 pair (quantization speedup gate) comes from the
  # graph micro-bench; merge it into the same baseline file.
  TSFM_NUM_THREADS=2 ./build/bench/bench_micro_graph \
    --benchmark_filter='BM_EncoderForwardFp32|BM_EncoderForwardInt8' \
    --benchmark_min_time=0.2 \
    --benchmark_out="$TSFM_BENCH_OUT/BENCH_baseline_graph.json" \
    --benchmark_out_format=json 2>/dev/null
  python3 - "$TSFM_BENCH_OUT" <<'PYEOF'
import json, sys
out = sys.argv[1]
base = json.load(open(f"{out}/BENCH_baseline.json"))
extra = json.load(open(f"{out}/BENCH_baseline_graph.json"))
base["benchmarks"] += extra["benchmarks"]
json.dump(base, open(f"{out}/BENCH_baseline.json", "w"), indent=1)
PYEOF
  rm -f "$TSFM_BENCH_OUT/BENCH_baseline_graph.json"
fi
