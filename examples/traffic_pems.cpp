// Scenario: PEMS-SF-style traffic sensing — 963 loop-detector channels, one
// reading per sensor. This is the regime the paper's intro motivates:
// univariate foundation models must run 963 times per sample, so both memory
// and time explode. The example sweeps the target dimension D' and shows the
// accuracy/cost trade-off of the PCA adapter, plus the explained variance
// retained at each D'.
//
// Build & run:  ./build/examples/traffic_pems

#include <cstdio>

#include "core/pca_adapter.h"
#include "data/uea_like.h"
#include "finetune/finetune.h"
#include "models/pretrained.h"
#include "resources/cost_model.h"

int main() {
  using namespace tsfm;

  auto spec = data::FindUeaSpec("PEMS-SF");
  std::printf("PEMS-SF: %lld sensor channels, %lld classes\n",
              static_cast<long long>(spec->channels),
              static_cast<long long>(spec->classes));

  // Paper-scale reality check: per-channel inference cost scales linearly in
  // D, so embedding all 963 channels is ~200x the cost of 5.
  const resources::PaperModelSpec vit = resources::VitPaperSpec();
  const resources::GpuSpec v100 = resources::V100Spec();
  for (int64_t channels : {963ll, 5ll}) {
    resources::Workload w{spec->train_size, spec->test_size, channels};
    auto est = resources::EstimateRun(
        vit, v100, w, resources::TrainRegime::kEmbedOnceHeadOnly);
    std::printf("  embed-once with D=%4lld channels: %7.0f simulated s (%s)\n",
                static_cast<long long>(channels), est.total_seconds,
                resources::VerdictString(est.verdict));
  }

  models::PretrainOptions pretrain;
  auto model = models::LoadOrPretrain(models::ModelKind::kVit,
                                      models::VitSmallConfig(), pretrain,
                                      "checkpoints/quickstart_vit.ckpt");
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // Generate a (capped) PEMS-like dataset. The generator keeps the paper's
  // key property: hundreds of sensors driven by a handful of latent traffic
  // patterns.
  data::DatasetPair traffic = data::GenerateUeaLike(*spec, /*seed=*/2);
  std::printf("Realized dataset: %lld channels (capped for CPU training)\n",
              static_cast<long long>(traffic.train.channels()));

  std::printf("\n  D'   explained-variance   test-accuracy   seconds\n");
  for (int64_t dprime : {2ll, 5ll, 10ll, 20ll}) {
    core::AdapterOptions options;
    options.out_channels = dprime;
    core::PcaAdapter pca(options);
    finetune::FineTuneOptions ft;
    ft.strategy = finetune::Strategy::kAdapterPlusHead;
    auto result = finetune::FineTune(model->get(), &pca, traffic.train,
                                     traffic.test, ft);
    if (!result.ok()) {
      std::fprintf(stderr, "D'=%lld: %s\n", static_cast<long long>(dprime),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %2lld        %5.1f%%             %.3f         %.2f\n",
                static_cast<long long>(dprime),
                100.0 * pca.explained_variance_ratio(), result->test_accuracy,
                result->total_seconds);
  }
  std::printf(
      "\nA handful of principal channels carries nearly all the variance of "
      "963 correlated sensors — the redundancy the adapter exploits.\n");
  return 0;
}
