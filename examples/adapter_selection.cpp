// Scenario: which adapter should I use for my dataset? This example runs the
// paper's full adapter zoo on one dataset over several seeds, prints a
// ranking, and uses Welch t-tests to say whether the winner is *actually*
// statistically distinguishable from the rest (the paper's answer: usually
// not — pick the cheapest).
//
// Build & run:  ./build/examples/adapter_selection [dataset]

#include <cstdio>
#include <string>
#include <vector>

#include "core/adapter.h"
#include "data/uea_like.h"
#include "finetune/finetune.h"
#include "models/pretrained.h"
#include "stats/stats.h"

int main(int argc, char** argv) {
  using namespace tsfm;

  const std::string dataset_name = argc > 1 ? argv[1] : "JapaneseVowels";
  auto spec = data::FindUeaSpec(dataset_name);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    std::fprintf(stderr, "known datasets:\n");
    for (const auto& s : data::UeaSpecs()) {
      std::fprintf(stderr, "  %s (%s)\n", s.name.c_str(), s.abbrev.c_str());
    }
    return 1;
  }

  models::PretrainOptions pretrain;
  auto model = models::LoadOrPretrain(models::ModelKind::kVit,
                                      models::VitSmallConfig(), pretrain,
                                      "checkpoints/quickstart_vit.ckpt");
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  constexpr int kSeeds = 3;
  // The paper's six adapters plus this library's supervised LDA extension.
  std::vector<core::AdapterKind> kinds = core::AllAdapterKinds();
  kinds.push_back(core::AdapterKind::kLda);
  std::vector<std::vector<double>> accuracies(kinds.size());
  std::vector<double> mean_seconds(kinds.size(), 0.0);

  for (int seed = 0; seed < kSeeds; ++seed) {
    data::DatasetPair pair = data::GenerateUeaLike(*spec, seed);
    for (size_t k = 0; k < kinds.size(); ++k) {
      core::AdapterOptions options;
      options.out_channels = 5;
      options.seed = static_cast<uint64_t>(seed) * 31 + 7;
      auto adapter = core::CreateAdapter(kinds[k], options);
      finetune::FineTuneOptions ft;
      ft.strategy = finetune::Strategy::kAdapterPlusHead;
      ft.seed = static_cast<uint64_t>(seed);
      auto result = finetune::FineTune(model->get(), adapter.get(), pair.train,
                                       pair.test, ft);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", core::AdapterKindName(kinds[k]),
                     result.status().ToString().c_str());
        return 1;
      }
      accuracies[k].push_back(result->test_accuracy);
      mean_seconds[k] += result->total_seconds / kSeeds;
    }
  }

  // Ranking by mean accuracy.
  std::vector<double> means;
  for (const auto& a : accuracies) means.push_back(stats::Mean(a));
  const std::vector<double> ranks = stats::RankDescending(means);
  std::printf("%s, D'=5, %d seeds:\n\n", spec->name.c_str(), kSeeds);
  std::printf("  %-12s %-16s %-10s %s\n", "adapter", "accuracy", "rank",
              "avg seconds");
  for (size_t k = 0; k < kinds.size(); ++k) {
    std::printf("  %-12s %-16s %-10.1f %.2f\n",
                core::AdapterKindName(kinds[k]),
                stats::FormatMeanStd(accuracies[k]).c_str(), ranks[k],
                mean_seconds[k]);
  }

  // Is the winner statistically distinguishable from the others?
  size_t best = 0;
  for (size_t k = 1; k < kinds.size(); ++k) {
    if (means[k] > means[best]) best = k;
  }
  std::printf("\nWelch t-test of %s against the rest:\n",
              core::AdapterKindName(kinds[best]));
  bool any_significant = false;
  for (size_t k = 0; k < kinds.size(); ++k) {
    if (k == best) continue;
    auto test = stats::WelchTTest(accuracies[best], accuracies[k]);
    if (!test.ok()) continue;
    std::printf("  vs %-12s p = %.3f%s\n", core::AdapterKindName(kinds[k]),
                test->p_value, test->p_value < 0.05 ? "  (significant)" : "");
    if (test->p_value < 0.05) any_significant = true;
  }
  std::printf("\n%s\n",
              any_significant
                  ? "Some differences are significant on this dataset."
                  : "No statistically significant winner - prefer the "
                    "cheapest adapter (the paper's conclusion).");
  return 0;
}
