// Scenario: a sensor feed with dropouts. MOMENT-style models are pretrained
// by reconstructing masked patches, so the same pretrained encoder that
// powers classification can fill gaps in a series — one of the "more complex
// time series tasks" the paper's conclusion points to. This example drops a
// fraction of the points from synthetic series and compares MOMENT's
// imputation against zero- and mean-filling.
//
// Build & run:  ./build/examples/impute_missing_data

#include <cmath>
#include <cstdio>

#include "data/corpus.h"
#include "models/moment.h"
#include "models/pretrained.h"
#include "tensor/ops.h"

int main() {
  using namespace tsfm;

  models::PretrainOptions pretrain;
  pretrain.corpus_size = 512;
  pretrain.epochs = 4;
  auto model_or = models::LoadOrPretrain(models::ModelKind::kMoment,
                                         models::MomentSmallConfig(), pretrain,
                                         "checkpoints/impute_moment.ckpt");
  if (!model_or.ok()) {
    std::fprintf(stderr, "model: %s\n", model_or.status().ToString().c_str());
    return 1;
  }
  auto* moment = static_cast<models::MomentModel*>(model_or->get());

  // Held-out series from the same corpus family, with random dropouts.
  Tensor series = data::GeneratePretrainCorpus(32, 64, 2024);
  Rng rng(5);
  for (double drop_rate : {0.1, 0.25, 0.5}) {
    Tensor mask = Tensor::Zeros(series.shape());
    for (int64_t i = 0; i < mask.numel(); ++i) {
      if (rng.Uniform() < drop_rate) mask.mutable_data()[i] = 1.0f;
    }
    auto imputed = moment->Impute(series, mask);
    if (!imputed.ok()) {
      std::fprintf(stderr, "impute: %s\n",
                   imputed.status().ToString().c_str());
      return 1;
    }
    // Compare RMSE on the missing positions against naive fills.
    double err_model = 0, err_zero = 0, err_mean = 0;
    int64_t missing = 0;
    // Per-series mean of *visible* points (what a simple pipeline would use).
    for (int64_t s = 0; s < series.dim(0); ++s) {
      double visible_mean = 0;
      int64_t visible = 0;
      for (int64_t t = 0; t < series.dim(1); ++t) {
        if (mask.at({s, t}) == 0.0f) {
          visible_mean += series.at({s, t});
          ++visible;
        }
      }
      visible_mean /= std::max<int64_t>(visible, 1);
      for (int64_t t = 0; t < series.dim(1); ++t) {
        if (mask.at({s, t}) == 0.0f) continue;
        ++missing;
        const double truth = series.at({s, t});
        const double pred = imputed->at({s, t});
        err_model += (pred - truth) * (pred - truth);
        err_zero += truth * truth;
        err_mean += (visible_mean - truth) * (visible_mean - truth);
      }
    }
    std::printf(
        "drop %4.0f%%: RMSE model %.3f | zero-fill %.3f | mean-fill %.3f "
        "(%lld points)\n",
        100.0 * drop_rate, std::sqrt(err_model / missing),
        std::sqrt(err_zero / missing), std::sqrt(err_mean / missing),
        static_cast<long long>(missing));
  }
  std::printf(
      "\nThe pretrained reconstruction head recovers masked structure the "
      "naive fills cannot.\n");
  return 0;
}
