// Scenario: should you bother with a foundation model at all? This example
// pits the classical ROCKET baseline (random convolution kernels + linear
// classifier, Dempster et al. 2020 — the non-deep comparator the paper's
// related-work section discusses) against the TSFM + adapter pipeline, and
// demonstrates the deployment path: save the fitted adapter, reload it, and
// classify a CSV export of new data.
//
// Build & run:  ./build/examples/rocket_vs_tsfm

#include <cstdio>

#include "baselines/rocket.h"
#include "data/csv.h"
#include "data/uea_like.h"
#include "finetune/classifier.h"

int main() {
  using namespace tsfm;

  auto spec = data::FindUeaSpec("Heartbeat");
  data::DatasetPair pair = data::GenerateUeaLike(*spec, /*seed=*/4);
  std::printf("Heartbeat-like data: %lld channels, %lld train samples\n",
              static_cast<long long>(pair.train.channels()),
              static_cast<long long>(pair.train.size()));

  // --- Contender 1: ROCKET ------------------------------------------------
  baselines::RocketConfig rocket_config;
  rocket_config.num_kernels = 200;
  baselines::RocketClassifier rocket(rocket_config);
  if (auto s = rocket.Fit(pair.train); !s.ok()) {
    std::fprintf(stderr, "rocket: %s\n", s.ToString().c_str());
    return 1;
  }
  auto rocket_acc = rocket.Evaluate(pair.test);
  if (!rocket_acc.ok()) return 1;
  std::printf("ROCKET (%lld kernels):      test accuracy %.3f\n",
              static_cast<long long>(rocket_config.num_kernels), *rocket_acc);

  // --- Contender 2: foundation model + PCA adapter ------------------------
  finetune::ClassifierConfig clf_config;
  clf_config.model_kind = models::ModelKind::kMoment;
  clf_config.checkpoint_path = "checkpoints/quickstart_moment.ckpt";
  clf_config.adapter = core::AdapterKind::kPca;
  clf_config.adapter_options.out_channels = 5;
  auto clf = finetune::TsfmClassifier::Create(clf_config);
  if (!clf.ok()) {
    std::fprintf(stderr, "classifier: %s\n", clf.status().ToString().c_str());
    return 1;
  }
  if (auto s = clf->Fit(pair.train, &pair.test); !s.ok()) {
    std::fprintf(stderr, "fit: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("MOMENT + PCA(D'=5) + head: test accuracy %.3f\n",
              clf->last_fit_result().test_accuracy);

  // --- Deployment: persist the fitted adapter, round-trip data via CSV ----
  if (clf->adapter() != nullptr) {
    auto s = core::SaveAdapter(*clf->adapter(), clf_config.adapter_options,
                               "checkpoints/heartbeat_pca.adapter");
    std::printf("saved fitted adapter: %s\n", s.ToString().c_str());
    auto reloaded = core::LoadAdapter("checkpoints/heartbeat_pca.adapter");
    if (reloaded.ok()) {
      std::printf("reloaded adapter '%s' with D' = %lld\n",
                  (*reloaded)->name().c_str(),
                  static_cast<long long>((*reloaded)->output_channels()));
    }
  }
  if (auto s = data::SaveCsv(pair.test, "checkpoints/heartbeat_test.csv");
      s.ok()) {
    auto loaded = data::LoadCsv("checkpoints/heartbeat_test.csv", "reload");
    if (loaded.ok()) {
      auto acc = clf->Evaluate(*loaded);
      std::printf("accuracy on CSV round-tripped test split: %.3f\n",
                  acc.ok() ? *acc : -1.0);
    }
  }
  std::printf(
      "\nBoth approaches are viable; the adapter pipeline reuses one "
      "pretrained encoder across tasks, which is the paper's point.\n");
  return 0;
}
