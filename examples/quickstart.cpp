// Quickstart: run a large pre-trained time-series foundation model on a
// multivariate dataset that would not otherwise fit your GPU, by putting a
// PCA adapter in front of it.
//
//   1. get a pretrained foundation model (pretrained on first use, cached),
//   2. generate a UEA-like multivariate classification dataset,
//   3. fit a PCA adapter reducing its channels to D' = 5,
//   4. fine-tune only the classification head on the reduced data,
//   5. report accuracy.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/adapter.h"
#include "data/uea_like.h"
#include "finetune/finetune.h"
#include "models/pretrained.h"

int main() {
  using namespace tsfm;

  // 1. A pretrained MOMENT-style foundation model (scaled to CPU size).
  //    The checkpoint is pretrained once and cached, like downloading a
  //    published checkpoint.
  models::PretrainOptions pretrain;  // defaults are fine for the demo
  auto model = models::LoadOrPretrain(models::ModelKind::kMoment,
                                      models::MomentSmallConfig(), pretrain,
                                      "checkpoints/quickstart_moment.ckpt");
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %s (%lld parameters)\n",
              (*model)->config().name.c_str(),
              static_cast<long long>((*model)->NumParameters()));

  // 2. A NATOPS-like dataset: 24 channels, 6 gesture classes.
  auto spec = data::FindUeaSpec("NATOPS");
  data::DatasetPair dataset = data::GenerateUeaLike(*spec, /*seed=*/0);
  std::printf("Dataset %s: %lld train / %lld test, %lld channels, %lld steps\n",
              dataset.train.name.c_str(),
              static_cast<long long>(dataset.train.size()),
              static_cast<long long>(dataset.test.size()),
              static_cast<long long>(dataset.train.channels()),
              static_cast<long long>(dataset.train.length()));

  // 3. A PCA adapter that mixes the 24 channels down to 5.
  core::AdapterOptions options;
  options.out_channels = 5;
  auto adapter = core::CreateAdapter(core::AdapterKind::kPca, options);

  // 4. Fine-tune adapter + head (the adapter is fitted, the encoder stays
  //    frozen, the dataset is embedded once, and a linear head is trained).
  finetune::FineTuneOptions ft;
  ft.strategy = finetune::Strategy::kAdapterPlusHead;
  auto result = finetune::FineTune(model->get(), adapter.get(), dataset.train,
                                   dataset.test, ft);
  if (!result.ok()) {
    std::fprintf(stderr, "fine-tune: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 5. Report.
  std::printf("PCA(D'=5) + head fine-tuning:\n");
  std::printf("  adapter fit     %.3f s\n", result->adapter_fit_seconds);
  std::printf("  train           %.3f s\n", result->train_seconds);
  std::printf("  train accuracy  %.3f\n", result->train_accuracy);
  std::printf("  test accuracy   %.3f  (chance = %.3f)\n",
              result->test_accuracy, 1.0 / dataset.train.num_classes);
  return 0;
}
