// Scenario: short-horizon forecasting with the same pretrained encoder used
// for classification — a linear forecasting head on top of the frozen MOMENT
// embedding (the paper's "more complex time series tasks" future-work
// direction). Compared against the persistence (last-value) baseline.
//
// Build & run:  ./build/examples/forecasting

#include <cstdio>

#include "data/corpus.h"
#include "finetune/forecast.h"
#include "models/pretrained.h"
#include "tensor/ops.h"

int main() {
  using namespace tsfm;

  models::PretrainOptions pretrain;
  pretrain.corpus_size = 512;
  pretrain.series_length = 64;
  pretrain.epochs = 4;
  auto model = models::LoadOrPretrain(models::ModelKind::kMoment,
                                      models::MomentSmallConfig(), pretrain,
                                      "checkpoints/impute_moment.ckpt");
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // Train/evaluate on held-out draws from the synthetic corpus family.
  Tensor train = data::GeneratePretrainCorpus(256, 64, 31);
  Tensor test = data::GeneratePretrainCorpus(64, 64, 32);

  for (int64_t horizon : {4ll, 8ll, 16ll}) {
    Rng head_rng(11 + static_cast<uint64_t>(horizon));
    finetune::ForecastingHead head((*model)->embedding_dim(), horizon,
                                   &head_rng);
    finetune::ForecastOptions options;
    options.horizon = horizon;
    options.epochs = 60;
    auto loss = finetune::FitForecaster(**model, &head, train, options);
    if (!loss.ok()) {
      std::fprintf(stderr, "fit: %s\n", loss.status().ToString().c_str());
      return 1;
    }
    auto metrics = finetune::EvaluateForecaster(**model, head, test);
    if (!metrics.ok()) return 1;
    std::printf(
        "horizon %2lld: MSE %.3f (persistence %.3f)  MAE %.3f (persistence "
        "%.3f)\n",
        static_cast<long long>(horizon), metrics->mse, metrics->naive_mse,
        metrics->mae, metrics->naive_mae);
  }
  std::printf(
      "\nOne pretrained encoder, three heads so far: classification, "
      "imputation, forecasting.\n");
  return 0;
}
