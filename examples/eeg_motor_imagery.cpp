// Scenario: a brain-computer-interface lab wants to fine-tune MOMENT on
// 64-channel EEG (MotorImagery-like data) with a single V100-32GB. Full
// fine-tuning dies with CUDA OOM at paper scale; this example uses the
// resource model to *predict* that before burning GPU-hours, then runs the
// channel-reduced pipeline that actually fits and compares two adapters.
//
// Build & run:  ./build/examples/eeg_motor_imagery

#include <cstdio>

#include "core/adapter.h"
#include "data/uea_like.h"
#include "finetune/finetune.h"
#include "models/pretrained.h"
#include "resources/cost_model.h"

int main() {
  using namespace tsfm;

  auto spec = data::FindUeaSpec("MotorImagery");
  std::printf("MotorImagery: %lld EEG channels, %lld samples/trial\n",
              static_cast<long long>(spec->channels),
              static_cast<long long>(spec->length));

  // --- Step 1: would full fine-tuning fit the GPU? Ask the cost model. ---
  const resources::PaperModelSpec moment = resources::MomentPaperSpec();
  const resources::GpuSpec v100 = resources::V100Spec();
  resources::Workload full{spec->train_size, spec->test_size, spec->channels};
  auto est_full = resources::EstimateRun(moment, v100, full,
                                         resources::TrainRegime::kFullFineTune);
  std::printf(
      "Full fine-tuning of MOMENT(341M) at paper scale: peak %.0f GB on a "
      "32 GB V100 -> %s\n",
      est_full.peak_memory_bytes / (1ull << 30),
      resources::VerdictString(est_full.verdict));

  // --- Step 2: with a 5-channel adapter in front, it fits. ---
  resources::Workload reduced{spec->train_size, spec->test_size, 5};
  auto est_reduced = resources::EstimateRun(
      moment, v100, reduced, resources::TrainRegime::kEmbedOnceHeadOnly);
  std::printf(
      "Adapter(D'=5) + head at paper scale: peak %.1f GB, %.0f simulated "
      "seconds -> %s\n",
      est_reduced.peak_memory_bytes / (1ull << 30), est_reduced.total_seconds,
      resources::VerdictString(est_reduced.verdict));

  // --- Step 3: run the reduced pipeline for real on the scaled model. ---
  models::PretrainOptions pretrain;
  auto model = models::LoadOrPretrain(models::ModelKind::kMoment,
                                      models::MomentSmallConfig(), pretrain,
                                      "checkpoints/quickstart_moment.ckpt");
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  data::DatasetPair eeg = data::GenerateUeaLike(*spec, /*seed=*/1);

  finetune::FineTuneOptions ft;
  ft.strategy = finetune::Strategy::kAdapterPlusHead;
  for (core::AdapterKind kind :
       {core::AdapterKind::kPca, core::AdapterKind::kVar}) {
    core::AdapterOptions options;
    options.out_channels = 5;
    auto adapter = core::CreateAdapter(kind, options);
    auto result = finetune::FineTune(model->get(), adapter.get(), eeg.train,
                                     eeg.test, ft);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", core::AdapterKindName(kind),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s test accuracy %.3f (total %.2f s on CPU)\n",
                core::AdapterKindName(kind), result->test_accuracy,
                result->total_seconds);
  }
  std::printf(
      "Takeaway: channel reduction turns an impossible fine-tune into a "
      "routine one, at no meaningful accuracy cost.\n");
  return 0;
}
